"""TROUTE: PathFinder negotiated-congestion routing.

Re-implementation of the VPR/TPaR router: every net is routed over the
routing-resource graph with an A*-guided Dijkstra search; congestion is
resolved by iteratively re-routing nets through overused nodes while the
present-congestion penalty grows and a history cost accumulates (PathFinder).

Four search kernels live behind :func:`route` (plus ``kernel="auto"``, the
default, which resolves to :data:`AUTO_KERNEL` -- ``astar``, measured
fastest at every reachable graph size -- and the opt-in
``objective="timing"`` that blends STA criticalities into the directed
kernels' costs -- see :func:`route`):

* ``kernel="astar"`` (the ``auto`` default) -- scalar directed search over
  the pin-filtered search view.  The wavefront expands over
  SOURCE/OPIN/CHANX/CHANY nodes only; input pins and sinks are reached
  through precomputed per-sink *entry maps* instead of being flooded,
  every expansion is pruned to the net's terminal bounding box (with a
  full-graph retry on the rare in-box failure), and the heap is keyed on
  ``cost + lookahead`` where the lookahead is the admissible Manhattan
  bound built from the precomputed RR-node coordinates.  Re-routing is
  incremental at *connection* granularity: after the first iteration only
  the congested connections of congested nets (plus the branches that hang
  off them) are ripped up and re-routed; untouched branches keep their
  paths across iterations.  The expansion loop runs as compiled C when the
  native backend is available (:mod:`repro.native.astar`, bit-identical
  routes) and as the pure-Python twin otherwise.
* ``kernel="wavefront"`` (opt-in baseline) -- vectorized delta-stepping
  PathFinder.
  Connection searches run *batched* on a continuous slot pipeline: up to
  ``batch`` nets expand one wavefront each, simultaneously, over flat
  per-slot label planes indexed ``slot * num_nodes + node``, and a slot
  refills the moment its search settles.  One expansion round is a handful
  of NumPy gathers over the search view's contiguous CSR arrays
  (:meth:`repro.fpga.routing_graph.RRGraph.search_view`) -- edge targets via
  ``np.take`` on ``csr_dst``, per-edge costs from the congestion cost
  vector, an ``np.lexsort`` + first-occurrence scatter-min in place of
  thousands of heap pushes -- and settles every frontier label within
  ``delta`` of each search's bucket (``cost + lookahead``).  Net-bbox
  pruning, the pin-floor bound and connection-level incremental rip-up
  carry over from the ``astar`` kernel by masking the CSR view.
* ``kernel="fast"`` -- the PR 1 kernel: same congestion cost vector and
  incremental re-routing, but the wavefront floods pins and is not
  bbox-pruned.  Identical floating-point trajectory to ``reference``.
* ``kernel="reference"`` -- the original implementation calling
  ``node_cost()`` per expanded edge; kept as the benchmark baseline.

``fast`` and ``reference`` perform identical floating-point operations in the
same order, so they expand identical wavefronts and return identical routes.
``astar`` and ``wavefront`` trade that bit-identity for throughput; their
route quality is re-baselined in ``benchmarks/bench_hotpaths.py``
(wirelength within a few percent of the reference route).
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from ..fpga.device import Device
from ..fpga.routing_graph import RR_BASE_COST, RRGraph, RRNodeType
from ..native.astar import astar_kernel
from ..obs import metrics as obs_metrics
from ..obs.trace import emit_series, span
from ..util.resilience import Deadline, DeadlineExceeded, FaultInjected, inject, record_event
from .forest import RouteForest, _NetFragment, _append_conn, build_route_forest
from .netlist import PhysicalNetlist
from .placement import Placement

__all__ = [
    "RoutingResult",
    "route",
    "route_resilient",
    "DEGRADATION_CHAIN",
    "NetRoute",
    "terminal_rr_nodes",
    "routing_to_payload",
    "routing_from_payload",
]


@dataclass
class NetRoute:
    """Route tree of one net: all RR nodes used (including pins and wires)."""

    net_id: int
    nodes: List[int] = field(default_factory=list)
    #: ordered per-sink connections ``(sink_rr, path, attach)`` as the
    #: directed kernels build them -- ``path`` lists the nodes the
    #: connection added (sink first), ``attach`` is the tree node it grew
    #: from.  The STA engine walks these for exact per-sink delays; kernels
    #: that do not track connections (fast/reference) leave it ``None`` and
    #: the engine falls back to a BFS over the tree's nodes.
    connections: Optional[List[Tuple[int, List[int], int]]] = None

    def wire_nodes(self, rr: RRGraph) -> List[int]:
        return [n for n in self.nodes if rr.is_wire(n)]


@dataclass
class RoutingResult:
    """Outcome of the routing step."""

    routes: Dict[int, NetRoute]
    success: bool
    iterations: int
    wirelength: int
    overused_nodes: int
    max_channel_occupancy: int
    #: flat route forest over all nets' trees (the directed kernels emit
    #: one natively; ``None`` from the fast/reference baselines).  The STA
    #: engine consumes it with pure NumPy gathers, and the PaR cache
    #: serializes it so cache hits re-hydrate routes instead of re-routing.
    forest: Optional[RouteForest] = None
    #: the kernel that actually produced this result ("auto" resolved);
    #: :func:`route_resilient` may return a different kernel than requested
    #: (degradation chain), and the cache layer refuses to store such
    #: results under the requested kernel's key.  ``None`` on re-hydrated
    #: payloads that predate the field.
    kernel: Optional[str] = None
    #: per-run observability snapshot (see OBSERVABILITY.md): convergence
    #: timelines (``overuse_per_iteration``, ``rerouted_nets_per_iteration``,
    #: ``iteration_wall_ms``) plus kernel counters (``nodes_expanded``,
    #: ``sta_retimes``).  Excluded from equality -- wall times differ run to
    #: run while the routes stay bit-identical -- and deliberately *not*
    #: serialized into cache payloads (artifacts stay telemetry-free, so
    #: ``ROUTE_ALGO_VERSION`` is unaffected); re-hydrated results carry
    #: ``{"from_cache": True}`` instead.
    telemetry: Optional[Dict[str, Any]] = field(default=None, compare=False, repr=False)

    def describe(self) -> str:
        status = "routable" if self.success else "CONGESTED"
        return (
            f"{status} after {self.iterations} iteration(s); "
            f"wirelength={self.wirelength}, peak channel occupancy="
            f"{self.max_channel_occupancy}, overused nodes={self.overused_nodes}"
        )


# The cost model lives next to the RR graph so the search view can bake the
# base-cost vector into its flat arrays; this module remains its one consumer.
_BASE_COST = RR_BASE_COST

#: Admissible floor of the cost still to pay after the last wire of a path:
#: one IPIN plus one SINK at base cost (congestion only ever adds to it).
#: Folding it into the A* lookahead makes the bound nearly tight, which
#: collapses the otherwise-huge tie plateau across the W parallel track grids.
#: Under the timing objective the floor scales by ``1 - criticality``: only
#: the congestion share of the blended cost is bounded below by the base
#: costs, while the delay share of a pin can be arbitrarily small.
_PIN_FLOOR = _BASE_COST[RRNodeType.IPIN] + _BASE_COST[RRNodeType.SINK]

#: What ``kernel="auto"`` resolves to.  The question "does the vectorized
#: wavefront kernel ever win?" was settled by measurement, twice: PR 5's
#: ``auto_crossover`` bench found the scalar astar kernel ~3-4x faster at
#: every reachable graph size (52k-203k RR nodes, wavefront at 0.18-0.31x),
#: and PR 7 re-ran the sweep with the *native* astar expansion loop, which
#: widened the gap by another large factor (``BENCH_hotpaths.json``
#: ``kernels.auto_crossover`` / ``kernels.native``).  There is no crossover
#: to encode -- the former ``WAVEFRONT_AUTO_MIN_NODES = 1M`` sentinel is
#: retired and ``auto`` simply means astar; ``wavefront`` remains available
#: as an opt-in vectorized baseline.
AUTO_KERNEL = "astar"


def terminal_rr_nodes(
    netlist: PhysicalNetlist, placement: Placement, rr: RRGraph
) -> Tuple[Dict[int, int], Dict[int, int]]:
    """Map each placed block to its (SOURCE, SINK) RR nodes.

    The one canonical block -> RR terminal mapping: the router keys its
    searches on it and the timing subsystem keys its per-connection
    criticalities on the same sink ids, so both must always agree.
    """
    src_of: Dict[int, int] = {}
    sink_of: Dict[int, int] = {}
    for block in netlist.blocks:
        site = placement.block_site.get(block.id)
        if site is None:
            continue
        if block.needs_logic_site:
            src_of[block.id] = rr.clb_source[(site.x, site.y)]
            sink_of[block.id] = rr.clb_sink[(site.x, site.y)]
        else:
            src_of[block.id] = rr.io_source[(site.x, site.y, site.subtile)]
            sink_of[block.id] = rr.io_sink[(site.x, site.y, site.subtile)]
    return src_of, sink_of


def _base_cost_array(rr: RRGraph) -> np.ndarray:
    base_cost = np.empty(rr.num_nodes, dtype=np.float64)
    for t, c in _BASE_COST.items():
        base_cost[rr.node_type == t] = c
    return base_cost


def route(
    netlist: PhysicalNetlist,
    placement: Placement,
    device: Device,
    max_iterations: int = 25,
    pres_fac_init: Optional[float] = None,
    pres_fac_mult: float = 1.8,
    hist_fac: float = 0.4,
    astar_fac: float = 1.1,
    kernel: str = "auto",
    bbox_margin: int = 3,
    delta: float = 6.0,
    batch: int = 8,
    objective: str = "wirelength",
    max_criticality: float = 0.95,
    criticality_exponent: float = 1.0,
    deadline: Optional[Deadline] = None,
) -> RoutingResult:
    """Route all nets of a placed netlist on the device's RR graph.

    ``kernel`` selects the search implementation (see module docstring);
    ``kernel="auto"`` (the default) resolves to :data:`AUTO_KERNEL` --
    ``astar``, measured fastest at every reachable graph size; the astar
    expansion loop itself runs as compiled C when the native backend is
    available (:mod:`repro.native`, bit-identical routes) and as the pure
    Python twin otherwise.  ``fast`` and ``reference`` return identical
    routes; ``astar`` and the opt-in vectorized ``wavefront`` are the
    re-baselined directed kernels of equivalent route quality.
    ``bbox_margin`` is the expansion margin of
    the per-net search bounding box used by the ``astar``/``wavefront``
    kernels.  ``delta`` is the wavefront kernel's bucket width: every
    pending label within ``delta`` of a search's bucket expands in the same
    vectorized round, so larger values mean fewer, wider rounds at the
    price of some out-of-order (re-)expansion (6.0 measured best on the PE
    workload -- both fastest and lowest wirelength; 1.0 approximates strict
    Dijkstra ordering).  ``batch`` caps how many nets expand concurrently.
    ``pres_fac_init`` defaults to the kernel's preferred schedule: 0.6 for
    ``fast``/``reference`` (the seed trajectory), 1.0 for ``astar``, and
    3.0 for ``wavefront`` -- the batched first iteration prices congestion
    harder still, taking small detours early while they are cheap instead
    of deep negotiation holes later.

    ``objective="timing"`` (``astar``/``wavefront`` only) switches the
    connection searches to the VPR-style timing-driven cost
    ``crit * delay + (1 - crit) * congestion``: per-connection
    criticalities start from a placement-distance STA estimate and are
    refreshed from the actual route trees after every PathFinder iteration
    (:class:`repro.timing.sta.CriticalityTracker`).  Delays are normalized
    by the architecture's unit-wire hop delay, so a unit wire costs exactly
    1.0 under any blend and the Manhattan lookahead stays admissible.
    ``max_criticality`` keeps every connection paying a slice of the
    congestion cost; ``criticality_exponent`` sharpens the blend.

    ``deadline`` bounds the route's wall time: every kernel polls it at
    PathFinder-iteration granularity (and inside long first iterations)
    and raises :class:`~repro.util.resilience.DeadlineExceeded` when it
    expires.  The check is a clock read per poll point -- it never changes
    the search trajectory, so results under a generous deadline are
    bit-identical to unbounded ones.
    """
    if kernel == "auto":
        kernel = AUTO_KERNEL
    if objective not in ("wirelength", "timing"):
        raise ValueError(f"unknown routing objective {objective!r}")
    if objective == "timing" and kernel not in ("astar", "wavefront"):
        raise ValueError(
            f"objective='timing' requires the astar or wavefront kernel, not {kernel!r}"
        )
    with span("par.route", kernel=kernel, objective=objective, nets=len(netlist.nets)):
        if kernel == "reference":
            result = _route_reference(
                netlist, placement, device,
                max_iterations=max_iterations,
                pres_fac_init=0.6 if pres_fac_init is None else pres_fac_init,
                pres_fac_mult=pres_fac_mult, hist_fac=hist_fac, astar_fac=astar_fac,
                deadline=deadline,
            )
        elif kernel == "astar":
            result = _route_astar(
                netlist, placement, device,
                max_iterations=max_iterations,
                pres_fac_init=1.0 if pres_fac_init is None else pres_fac_init,
                pres_fac_mult=pres_fac_mult, hist_fac=hist_fac, astar_fac=astar_fac,
                bbox_margin=bbox_margin, objective=objective,
                max_criticality=max_criticality,
                criticality_exponent=criticality_exponent,
                deadline=deadline,
            )
        elif kernel == "wavefront":
            result = _route_wavefront(
                netlist, placement, device,
                max_iterations=max_iterations,
                pres_fac_init=3.0 if pres_fac_init is None else pres_fac_init,
                pres_fac_mult=pres_fac_mult, hist_fac=hist_fac, astar_fac=astar_fac,
                bbox_margin=bbox_margin, delta=delta, batch=batch,
                objective=objective, max_criticality=max_criticality,
                criticality_exponent=criticality_exponent,
                deadline=deadline,
            )
        elif kernel == "fast":
            result = _route_fast(
                netlist, placement, device,
                max_iterations=max_iterations,
                pres_fac_init=0.6 if pres_fac_init is None else pres_fac_init,
                pres_fac_mult=pres_fac_mult, hist_fac=hist_fac, astar_fac=astar_fac,
                deadline=deadline,
            )
        else:
            raise ValueError(f"unknown routing kernel {kernel!r}")
    result.kernel = kernel
    if result.telemetry is not None:
        # Convergence timelines land in the trace (no-ops when disabled);
        # the arrays themselves stay on the result for PaRResult.telemetry.
        emit_series(
            "route.overuse", result.telemetry.get("overuse_per_iteration", ()),
            kernel=kernel,
        )
    return result


#: Kernel fallback order of :func:`route_resilient`: quality-first to
#: cheapest.  A degraded attempt starts at the requested kernel's position
#: and walks right; ``reference`` is a deliberate dead end (it exists to
#: pin the baseline trajectory, degrading it would defeat the purpose).
DEGRADATION_CHAIN: Tuple[str, ...] = ("wavefront", "astar", "fast")


def route_resilient(
    netlist: PhysicalNetlist,
    placement: Placement,
    device: Device,
    max_iterations: int = 25,
    kernel: str = "auto",
    objective: str = "wirelength",
    deadline_s: Optional[float] = None,
    events: Optional[List[Dict[str, object]]] = None,
    degrade: bool = True,
    **route_kwargs,
) -> RoutingResult:
    """:func:`route` with a per-kernel deadline and a degradation chain.

    Each attempt gets a fresh :class:`~repro.util.resilience.Deadline` of
    ``deadline_s`` seconds.  When a kernel times out, crashes, or fails to
    converge within ``max_iterations``, the next kernel in
    :data:`DEGRADATION_CHAIN` (from the requested kernel's position) is
    tried, and the switch is recorded as a ``degraded-kernel`` event in
    ``events``.  The ``fast`` kernel cannot price timing costs, so a
    timing-objective route that degrades to it also degrades the objective
    to ``wirelength`` (recorded on the event).

    On a fault-free run this is exactly one :func:`route` call -- same
    arguments, same trajectory, bit-identical result -- so callers can
    adopt it unconditionally.  ``degrade=False`` keeps the deadline and
    event reporting but re-raises instead of walking the chain.

    Raises the final attempt's error when every kernel in the chain fails
    outright; returns the last non-converged result (``success=False``)
    when kernels complete but congestion never resolves.
    """
    if kernel == "auto":
        kernel = AUTO_KERNEL
    if kernel in DEGRADATION_CHAIN and degrade:
        chain = DEGRADATION_CHAIN[DEGRADATION_CHAIN.index(kernel):]
    else:
        chain = (kernel,)

    last_result: Optional[RoutingResult] = None
    last_error: Optional[BaseException] = None
    for attempt, attempt_kernel in enumerate(chain):
        eff_objective = objective
        if objective == "timing" and attempt_kernel not in ("astar", "wavefront"):
            eff_objective = "wirelength"
        fault = inject("route.kernel")
        try:
            if fault == "timeout":
                raise DeadlineExceeded(
                    f"injected kernel timeout ({attempt_kernel})"
                )
            if fault is not None:
                raise FaultInjected("route.kernel", kind=fault)
            result = route(
                netlist, placement, device,
                max_iterations=max_iterations,
                kernel=attempt_kernel,
                objective=eff_objective,
                deadline=Deadline(deadline_s),
                **route_kwargs,
            )
        except DeadlineExceeded as exc:
            record_event(events, "kernel-deadline", site="route.kernel",
                         kernel=attempt_kernel, deadline_s=deadline_s,
                         error=str(exc))
            last_error = exc
            continue
        except (FaultInjected, RuntimeError) as exc:
            record_event(events, "kernel-error", site="route.kernel",
                         kernel=attempt_kernel,
                         error=f"{type(exc).__name__}: {exc}")
            last_error = exc
            continue
        if attempt > 0:
            record_event(
                events, "degraded-kernel", site="route.kernel",
                requested=chain[0], kernel=attempt_kernel,
                objective=eff_objective,
                objective_degraded=eff_objective != objective,
            )
        if result.success:
            if result.forest is None:
                # The fast/reference baselines skip the forest build so
                # their benchmark timings stay honest; the resilient path
                # is not timed against them, and downstream consumers
                # (STA, cached-route serialization) expect every converged
                # resilient result to carry one.
                result.forest = build_route_forest(result.routes, device.rr_graph)
            return result
        record_event(events, "kernel-nonconverged", site="route.kernel",
                     kernel=attempt_kernel, iterations=result.iterations,
                     overused_nodes=result.overused_nodes)
        if last_result is None:
            # Keep the *requested* kernel's non-converged result: when the
            # whole chain fails to converge, the caller sees exactly what a
            # plain route() would have returned, with the extra attempts
            # visible only in the events.
            last_result = result
    if last_result is not None:
        return last_result
    assert last_error is not None
    raise last_error


def _route_astar(
    netlist: PhysicalNetlist,
    placement: Placement,
    device: Device,
    max_iterations: int = 25,
    pres_fac_init: float = 1.0,
    pres_fac_mult: float = 1.8,
    hist_fac: float = 0.4,
    astar_fac: float = 1.1,
    bbox_margin: int = 3,
    objective: str = "wirelength",
    max_criticality: float = 0.95,
    criticality_exponent: float = 1.0,
    deadline: Optional[Deadline] = None,
) -> RoutingResult:
    """Directed incremental PathFinder over the pin-filtered search view."""
    rr = device.rr_graph
    num_nodes = rr.num_nodes
    view = rr.search_view()

    base_cost = view.base_cost
    cap_arr = rr.node_capacity.astype(np.int32)
    history = np.zeros(num_nodes, dtype=np.float64)

    # Timing objective: per-connection criticalities blend a normalized
    # delay cost into the congestion cost (crit * delay + (1-crit) * cong).
    # The normalization makes a unit wire cost exactly 1.0 in delay terms,
    # so the Manhattan lookahead below stays admissible under any blend.
    # Criticalities live in the tracker's flat conn_crit vector, indexed by
    # connection id (resolved once per sink below) -- no per-connection
    # dict probes in the search loop, no dict rebuild per iteration.
    timing_mode = objective == "timing"
    if timing_mode:
        from ..timing.sta import CriticalityTracker

        tracker = CriticalityTracker(
            netlist, placement, device,
            max_criticality=max_criticality, exponent=criticality_exponent,
        )
        conn_crit = tracker.initial_flat()
        cid_of = tracker.conn_index
        delay_arr: np.ndarray = view.delay_ns / device.arch.wire_hop_delay_ns
        delay_l: List[float] = delay_arr.tolist()
    else:
        tracker = None
        conn_crit = None
        cid_of = {}
        delay_arr = np.zeros(0, dtype=np.float64)
        delay_l = []

    xs, ys = view.xs, view.ys
    types = view.types
    adj = view.adj_search
    cap = view.capacity
    entries_of = view.entries_of
    occupancy = [0] * num_nodes

    src_of, sink_of = terminal_rr_nodes(netlist, placement, rr)

    routes: Dict[int, NetRoute] = {}
    net_terms: Dict[int, Tuple[int, List[int]]] = {}
    net_bbox: Dict[int, Tuple[int, int, int, int]] = {}
    for net in netlist.nets:
        source = src_of[net.driver]
        sinks = [sink_of[s] for s in net.sinks]
        net_terms[net.id] = (source, sinks)
        txs = [xs[source]] + [xs[t] for t in sinks]
        tys = [ys[source]] + [ys[t] for t in sinks]
        net_bbox[net.id] = (
            min(txs) - bbox_margin, max(txs) + bbox_margin,
            min(tys) - bbox_margin, max(tys) + bbox_margin,
        )
    full_bounds = (-(1 << 30), 1 << 30, -(1 << 30), 1 << 30)

    generation = 0

    IPIN = RRNodeType.IPIN
    SINK = RRNodeType.SINK
    CHANX = RRNodeType.CHANX
    CHANY = RRNodeType.CHANY
    heappush = heapq.heappush
    heappop = heapq.heappop

    # Native backend: the compiled expansion loop reads the search view's
    # CSR directly and keeps the per-search visited/cost/prev planes in
    # int64/float64 arrays it shares with this function.  It is a
    # bit-identical twin of the _search closure below (same routes, same
    # trajectories -- see repro.native.astar), so which backend ran is
    # unobservable in the result.  None -> pure-Python kernels.
    nat = astar_kernel()
    # Nodes-expanded counter: the native kernel accumulates into the int64
    # out-param array, the Python twin into the one-slot list cell -- same
    # definition (one count per adjacency scan), integer-only either way.
    nat_stats = np.zeros(1, dtype=np.int64)
    py_expanded = [0]
    if nat is not None:
        visited_gen: List[int] = []     # unused; the arrays below replace them
        cost_so_far: List[float] = []
        prev_node: List[int] = []
        nat_visited = np.zeros(num_nodes, dtype=np.int64)
        nat_csf = np.zeros(num_nodes, dtype=np.float64)
        nat_prev = np.full(num_nodes, -1, dtype=np.int64)
        nat_tree_mark = np.zeros(num_nodes, dtype=np.int64)
        nat_out = np.empty(num_nodes + 1, dtype=np.int64)
        nat_ntype = np.ascontiguousarray(rr.node_type, dtype=np.int8)
        nat.bind(
            view.csr_ptr, view.csr_dst, view.xs_arr, view.ys_arr, nat_ntype,
            int(IPIN), int(SINK), nat_visited, nat_csf, nat_prev,
            nat_tree_mark, astar_fac, _PIN_FLOOR, nat_stats,
        )
        entry_csr = view.entry_csr
    else:
        visited_gen = [0] * num_nodes
        cost_so_far = [0.0] * num_nodes
        prev_node = [-1] * num_nodes

    bh: List[float] = []
    cost: List[float] = []
    pres_fac = pres_fac_init
    # Live set of strictly-overused nodes, maintained by bump(): the
    # congestion scans below stay proportional to the overuse, never to the
    # graph, and see occupancy changes from earlier re-routes in the same
    # iteration (which is what makes the negotiation converge).
    over_now: Set[int] = set()

    def bump(n: int, d: int) -> None:
        occupancy[n] += d
        over = occupancy[n] + 1 - cap[n]
        if over > 0:
            cost[n] = bh[n] * (1.0 + pres_fac * over)
            if over > 1:
                over_now.add(n)
            elif d < 0:
                over_now.discard(n)
        else:
            cost[n] = bh[n]
            if d < 0:
                over_now.discard(n)

    def _search(
        target: int, tree: List[int], gen: int,
        bounds: Tuple[int, int, int, int], fac: float, crt: float = 0.0,
    ) -> bool:
        """One directed wavefront from the route tree to ``target``.

        ``crt`` is the connection's criticality under the timing objective
        (0.0 in wirelength mode): every node cost blends to
        ``(1-crt) * congestion + crt * delay``.
        """
        # Bind the hot closure variables as locals: the expansion loop below
        # runs millions of times per route and LOAD_FAST is measurably
        # cheaper than LOAD_DEREF.
        xs_l, ys_l, adj_l, cost_l = xs, ys, adj, cost
        visited_l, csf_l, prev_l = visited_gen, cost_so_far, prev_node
        push, pop = heappush, heappop
        exp_l = py_expanded
        dly_l = delay_l
        omc = 1.0 - crt
        pf = _PIN_FLOOR if crt == 0.0 else omc * _PIN_FLOOR
        xlo, xhi, ylo, yhi = bounds
        tx, ty = xs_l[target], ys_l[target]
        entry_get = entries_of(target).get
        t_cost = cost_l[target]
        if crt:
            t_cost = omc * t_cost + crt * dly_l[target]
        best = float("inf")  # cheapest known completion through the entry map
        heap: List[Tuple[float, float, int]] = []

        def complete(w: int, g_w: float) -> None:
            """Finish target <- ipin <- ``w`` through the cheapest input pin."""
            nonlocal best
            ips = entry_get(w)
            if ips is None:
                return
            if crt:
                ip = ips[0]
                c = omc * cost_l[ip] + crt * dly_l[ip]
                for q in ips[1:]:
                    cq = omc * cost_l[q] + crt * dly_l[q]
                    if cq < c:
                        ip, c = q, cq
            else:
                ip = ips[0]
                c = cost_l[ip]
                for q in ips[1:]:
                    if cost_l[q] < c:
                        ip, c = q, cost_l[q]
            total = g_w + c + t_cost
            if total < best - 1e-12:
                best = total
                visited_l[target] = gen
                csf_l[target] = total
                prev_l[target] = ip
                visited_l[ip] = gen
                csf_l[ip] = g_w + c
                prev_l[ip] = w

        # The route tree is seeded lazily: candidates are sorted by lookahead
        # and enter the heap only once the frontier's f reaches their h --
        # most tree nodes of a big net are far from the target and never get
        # pushed at all.  (A candidate the wavefront reaches before its seed
        # turn is simply re-relaxed to cost 0 when the turn comes.)
        seed_list: List[Tuple[float, int]] = []
        for n in tree:
            tt = types[n]
            if tt == IPIN or tt == SINK:
                continue  # dead ends in the filtered view
            x = xs_l[n]
            y = ys_l[n]
            if x < xlo or x > xhi or y < ylo or y > yhi:
                continue  # outside the search box: its expansions would be too
            dx = x - tx
            dy = y - ty
            if dx < 0:
                dx = -dx
            if dy < 0:
                dy = -dy
            if dx + dy <= 1:
                complete(n, 0.0)
            seed_list.append(((dx + dy) * fac, n))
        seed_list.sort()
        si = 0
        nseeds = len(seed_list)
        while True:
            if si < nseeds and (not heap or seed_list[si][0] <= heap[0][0]):
                f, n = seed_list[si]
                si += 1
                g = 0.0
                visited_l[n] = gen
                csf_l[n] = 0.0
                prev_l[n] = -1
            elif heap:
                f, g, n = pop(heap)
                if g > csf_l[n] + 1e-12:
                    continue  # stale heap entry
            else:
                break
            while True:
                if f >= best:
                    # The lookahead is admissible, so neither this node nor
                    # anything left in the heap can beat the completion
                    # already found: the recorded backtrace is final.
                    return True
                exp_l[0] += 1  # node expanded: its adjacency is scanned
                # Expand n; the cheapest improved neighbor is chased inline
                # (no heap round-trip) while it is at least as good as the
                # current heap top -- on straight corridors this removes the
                # push/pop pair for almost every hop.  Pushes are pruned with
                # two bounds: the weighted heap key ``f_m`` and the strictly
                # admissible ``g + dist + pin floor``, which becomes tight as
                # soon as a completion is known and cuts the cross-track tie
                # plateau at its root.
                chase_f = float("inf")
                chase_g = 0.0
                chase_m = -1
                for m in adj_l[n]:
                    cm = cost_l[m]
                    if crt:
                        cm = omc * cm + crt * dly_l[m]
                    new_cost = g + cm
                    if visited_l[m] == gen and new_cost >= csf_l[m] - 1e-12:
                        continue  # already reached at least as cheaply
                    x = xs_l[m]
                    if x < xlo or x > xhi:
                        continue
                    y = ys_l[m]
                    if y < ylo or y > yhi:
                        continue
                    dx = x - tx
                    dy = y - ty
                    if dx < 0:
                        dx = -dx
                    if dy < 0:
                        dy = -dy
                    d = dx + dy
                    if d <= 1:
                        # Candidate entry wire: record it, then complete
                        # through it immediately so the bound is primed
                        # long before the wavefront reaches the target.
                        visited_l[m] = gen
                        csf_l[m] = new_cost
                        prev_l[m] = n
                        complete(m, new_cost)
                        f_m = new_cost + d * fac
                        if new_cost + d + pf >= best or f_m >= best:
                            continue
                    else:
                        f_m = new_cost + d * fac
                        if f_m >= best or new_cost + d + pf >= best:
                            continue  # cannot beat the known completion
                        visited_l[m] = gen
                        csf_l[m] = new_cost
                        prev_l[m] = n
                    if f_m < chase_f:
                        if chase_m >= 0:
                            push(heap, (chase_f, chase_g, chase_m))
                        chase_f, chase_g, chase_m = f_m, new_cost, m
                    else:
                        push(heap, (f_m, new_cost, m))
                if chase_m < 0:
                    break
                if (heap and heap[0][0] < chase_f) or (
                    si < nseeds and seed_list[si][0] < chase_f
                ):
                    # Something cheaper waits in the heap or the seed stream:
                    # defer the candidate to keep the expansion in f-order.
                    push(heap, (chase_f, chase_g, chase_m))
                    break
                f, g, n = chase_f, chase_g, chase_m
        return best < float("inf")

    # Per-net route trees are kept as ordered *connections* -- one
    # ``(target, path, attach)`` triple per sink, where ``path`` lists the
    # nodes this connection added to the tree (target first) and ``attach``
    # is the existing tree node the path grew from.  A duplicate sink (two
    # net pins on one block) is recorded as ``(target, [], target)``.
    net_conns: Dict[int, List[Tuple[int, List[int], int]]] = {}

    # Live per-net forest fragments, emitted connection-by-connection as the
    # router backtraces (native and Python paths alike): the flat forest and
    # the re-time loop never rebuild a fragment from a net's connection list
    # again -- _sync_frags below just freezes what routing already wrote.
    frag_of: Dict[int, _NetFragment] = {}
    frag_pos: Dict[int, Dict[int, int]] = {}

    def _sync_frags(cache: Dict) -> None:
        for nid, r in routes.items():
            entry = cache.get(nid)
            if entry is None or entry[0] is not r:
                cache[nid] = (r, frag_of[nid].freeze())

    def _route_connections(
        net_id: int,
        order: List[int],
        tree: List[int],
        tree_set: Set[int],
        conns: List[Tuple[int, List[int], int]],
    ) -> None:
        nonlocal generation
        if deadline is not None:
            deadline.check(f"astar net {net_id}")
        frag = frag_of[net_id]
        pos_of = frag_pos[net_id]
        escalation = (net_bbox[net_id], full_bounds)
        for target in order:
            if target in tree_set:
                bump(target, 1)
                conns.append((target, [], target))
                _append_conn(frag, pos_of, target, [], target)
                continue
            if timing_mode:
                cid = cid_of.get((net_id, target))
                crt = float(conn_crit[cid]) if cid is not None else 0.0
            else:
                crt = 0.0
            # A too-tight box can starve a congested net of detour room;
            # escalate to the net terminal box and then the whole device
            # before giving up.
            if nat is not None:
                ew_wire, ew_ptr, ew_ipin = entry_csr(target)
                tree_arr = np.asarray(tree, dtype=np.int64)
                npath = 0
                for box in escalation:
                    generation += 1
                    npath = nat.search(
                        generation, tree_arr, target,
                        ew_wire, ew_ptr, ew_ipin, box, crt, nat_out,
                    )
                    if npath > 0:
                        break
                if npath <= 0:
                    raise RuntimeError(
                        f"net {net_id} could not reach its sink; the device is too "
                        "small or the channel width is insufficient even with "
                        "congestion allowed"
                    )
                # The compiled kernel backtraced already: nat_out holds the
                # new path sink-first and the tree node it attaches to.
                path = nat_out[:npath].tolist()
                n = int(nat_out[npath])
            else:
                found = False
                for box in escalation:
                    generation += 1
                    if _search(target, tree, generation, box, astar_fac, crt):
                        found = True
                        break
                if not found:
                    raise RuntimeError(
                        f"net {net_id} could not reach its sink; the device is too "
                        "small or the channel width is insufficient even with "
                        "congestion allowed"
                    )
                # Backtrace and merge the new path into the route tree.
                path = []
                n = target
                while n not in tree_set:
                    path.append(n)
                    n = prev_node[n]
            for p in path:
                tree_set.add(p)
                tree.append(p)
                bump(p, 1)
            conns.append((target, path, n))
            _append_conn(frag, pos_of, target, path, n)

    def _net_route_of(net_id: int) -> NetRoute:
        conns = net_conns[net_id]
        nodes = [net_terms[net_id][0]]
        for _, path, _ in conns:
            nodes.extend(path)
        return NetRoute(net_id, nodes, connections=list(conns))

    def route_net(net_id: int) -> None:
        source, sinks = net_terms[net_id]
        tree: List[int] = [source]
        tree_set: Set[int] = {source}
        # Route sinks farthest-first (VPR heuristic).
        sx, sy = xs[source], ys[source]
        order = sorted(sinks, key=lambda t: -(abs(xs[t] - sx) + abs(ys[t] - sy)))
        conns: List[Tuple[int, List[int], int]] = []
        net_conns[net_id] = conns
        frag_of[net_id] = _NetFragment(source)
        frag_pos[net_id] = {source: -1}
        _route_connections(net_id, order, tree, tree_set, conns)
        routes[net_id] = _net_route_of(net_id)

    def reroute_net(net_id: int) -> None:
        """Rip up and re-route only the congested connections of one net.

        A connection is ripped when its own nodes are overused or when it
        attaches to (or targets) a node owned by a ripped earlier connection;
        connections are stored in route order, so one forward scan closes the
        dependency chain.
        """
        source = net_terms[net_id][0]
        kept: List[Tuple[int, List[int], int]] = []
        ripped: List[Tuple[int, List[int], int]] = []
        ripped_nodes: Set[int] = set()
        for conn in net_conns[net_id]:
            target, path, attach = conn
            usage = path if path else [target]
            if (
                attach in ripped_nodes
                or target in ripped_nodes
                or not over_now.isdisjoint(usage)
            ):
                ripped.append(conn)
                ripped_nodes.update(usage)
            else:
                kept.append(conn)
        if not ripped:
            return
        for target, path, _ in ripped:
            for n in (path if path else [target]):
                bump(n, -1)
        tree = [source]
        tree_set = {source}
        for _, path, _ in kept:
            for n in path:
                tree.append(n)
                tree_set.add(n)
        # Restart the net's live fragment from the kept connections; the
        # re-routed ones are appended by _route_connections as they land.
        frag = _NetFragment(source)
        pos_of: Dict[int, int] = {source: -1}
        for target, path, attach in kept:
            _append_conn(frag, pos_of, target, path, attach)
        frag_of[net_id] = frag
        frag_pos[net_id] = pos_of
        new_conns: List[Tuple[int, List[int], int]] = []
        _route_connections(
            net_id, [c[0] for c in ripped], tree, tree_set, new_conns
        )
        net_conns[net_id] = kept + new_conns
        routes[net_id] = _net_route_of(net_id)

    iteration = 0
    success = False
    net_ids = [net.id for net in netlist.nets]
    # Convergence telemetry: plain list appends and clock reads at iteration
    # granularity -- never an FP input to the search, so trajectory-neutral.
    tl_overuse: List[int] = []
    tl_rerouted: List[int] = []
    tl_wall_ms: List[float] = []

    for iteration in range(1, max_iterations + 1):
        if deadline is not None:
            deadline.check(f"astar iteration {iteration}")
        it_t0 = time.perf_counter()
        # Refresh the congestion cost vector for this iteration's pres_fac
        # and history (occupancy-driven entries are kept current by bump()).
        occ_arr = np.asarray(occupancy, dtype=np.int32)
        base_hist = base_cost + history
        over_arr = occ_arr + 1 - cap_arr
        cost_arr = np.where(over_arr > 0, base_hist * (1.0 + pres_fac * over_arr), base_hist)
        bh = base_hist.tolist()
        if nat is not None:
            # bump() writes through this array, so the compiled kernel sees
            # the live congestion costs -- the same bits the list twin holds.
            cost = cost_arr
            nat.set_costs(cost_arr, delay_arr if timing_mode else cost_arr)
        else:
            cost = cost_arr.tolist()

        rerouted = 0
        with span("par.route.iteration", i=iteration):
            if iteration == 1:
                rerouted = len(net_ids)
                for nid in net_ids:
                    route_net(nid)
            else:
                # Incremental re-route: only nets that occupy congested nodes,
                # and within them only the congested connections.  over_now is
                # live, so a net already healed by an earlier re-route in this
                # iteration is skipped and one newly congested is picked up.
                for nid in net_ids:
                    if not over_now.isdisjoint(routes[nid].nodes):
                        reroute_net(nid)
                        rerouted += 1

        tl_overuse.append(len(over_now))
        tl_rerouted.append(rerouted)
        tl_wall_ms.append((time.perf_counter() - it_t0) * 1000.0)
        if not over_now:
            success = True
            break
        for n in over_now:
            history[n] += hist_fac * (occupancy[n] - cap[n])
        pres_fac *= pres_fac_mult
        if timing_mode:
            # Re-time the current route trees on the flat forest: the next
            # iteration's re-routes price against fresh criticalities.  The
            # fragments were emitted during backtrace; freezing them into
            # the tracker's cache means update_flat re-flattens nothing.
            _sync_frags(tracker._frag_cache)
            conn_crit = tracker.update_flat(routes)

    occ_arr = np.asarray(occupancy, dtype=np.int32)
    # Emit the flat forest for converged routes only: a congested result's
    # trees are about to be thrown away (min-channel-width probes below
    # the minimum fail by construction), so flattening them is pure waste.
    # The fragments were emitted during backtrace (native and Python paths
    # alike); the build below only concatenates them.
    forest = None
    if success:
        frag_cache = tracker._frag_cache if tracker is not None else {}
        _sync_frags(frag_cache)
        forest = build_route_forest(routes, rr, cache=frag_cache)
    telemetry = {
        "kernel": "astar",
        "native": nat is not None,
        "overuse_per_iteration": tl_overuse,
        "rerouted_nets_per_iteration": tl_rerouted,
        "iteration_wall_ms": tl_wall_ms,
        "nodes_expanded": int(nat_stats[0]) if nat is not None else py_expanded[0],
        "sta_retimes": tracker.updates if tracker is not None else 0,
    }
    return _assemble_result(
        rr, routes, occ_arr, cap_arr, success, iteration, forest=forest,
        telemetry=telemetry,
    )


def _route_wavefront(
    netlist: PhysicalNetlist,
    placement: Placement,
    device: Device,
    max_iterations: int = 25,
    pres_fac_init: float = 3.0,
    pres_fac_mult: float = 1.8,
    hist_fac: float = 0.4,
    astar_fac: float = 1.1,
    bbox_margin: int = 3,
    delta: float = 6.0,
    batch: int = 8,
    objective: str = "wirelength",
    max_criticality: float = 0.95,
    criticality_exponent: float = 1.0,
    deadline: Optional[Deadline] = None,
) -> RoutingResult:
    """Vectorized delta-stepping PathFinder over the CSR search view.

    The scalar kernels pay per-node Python dict/heap work for every expanded
    node; this kernel instead expands whole *cost buckets* of whole *batches
    of nets* at once.  Up to ``batch`` connection searches run concurrently
    on a continuous slot pipeline, each in its own label plane of one flat
    array (``slot * num_nodes + node``), and one round settles every pending
    label whose key ``g + lookahead`` lies within ``delta`` of its search's
    bucket:

    1. gather the CSR fanouts of all active labels (``np.take`` over
       ``csr_dst`` plus a repeat/cumsum edge-index construction),
    2. price the edges from the congestion cost vector, mask them against
       each net's bounding box, and prune with the weighted key and the
       admissible pin-floor bound against the best known completion,
    3. scatter-min into the label planes via ``np.lexsort`` + first
       occurrence (the vector equivalent of the heap's decrease-key),
    4. fold the per-sink entry tables (``g[wire] + cost[ipin]``) into each
       search's completion bound -- rescans are event-driven, touching only
       searches whose entry-wire labels just improved.

    A search finishes when nothing pending can beat its completion -- the
    same branch-and-bound rule as ``astar`` -- and its slot refills
    immediately, so rounds stay at full batch width with no wave barriers.
    Concurrency control is two-layered (admission pressure + optimistic
    commit stamps, see :func:`_drive`); the rip-up logic is connection-level
    and identical to ``astar``'s, with two additions that stabilize the
    negotiation endgame: persistently congested nets grow their search
    boxes (a duel over one wire can reach distant free capacity instead of
    ping-ponging inside a tight box), and freshly-conflicted nets re-route
    before long-suffering ones, which usually find their wire vacated.
    """
    rr = device.rr_graph
    num_nodes = rr.num_nodes
    view = rr.search_view()

    csr_ptr = view.csr_ptr
    csr_deg = view.csr_deg
    csr_dst = view.csr_dst.astype(np.int64)
    xs = view.xs_arr
    ys = view.ys_arr
    ntype = rr.node_type
    base_cost = view.base_cost
    cap_arr = rr.node_capacity.astype(np.int64)

    occupancy = np.zeros(num_nodes, dtype=np.int64)
    history = np.zeros(num_nodes, dtype=np.float64)
    over_mask = np.zeros(num_nodes, dtype=bool)
    bh = base_cost.copy()
    cost = base_cost.copy()
    pres_fac = pres_fac_init
    fac = astar_fac

    # Timing objective: per-slot criticalities blend the normalized delay
    # vector into the congestion cost at edge-pricing time (see the astar
    # kernel for the admissibility argument -- a unit wire's delay is
    # normalized to exactly 1.0).
    timing_mode = objective == "timing"
    if timing_mode:
        from ..timing.sta import CriticalityTracker

        tracker = CriticalityTracker(
            netlist, placement, device,
            max_criticality=max_criticality, exponent=criticality_exponent,
        )
        conn_crit = tracker.initial_flat()
        cid_of = tracker.conn_index
        delay_arr = view.delay_ns / device.arch.wire_hop_delay_ns
    else:
        tracker = None
        conn_crit = None
        cid_of = {}
        delay_arr = None

    src_of, sink_of = terminal_rr_nodes(netlist, placement, rr)

    routes: Dict[int, NetRoute] = {}
    net_terms: Dict[int, Tuple[int, List[int]]] = {}
    net_bbox: Dict[int, Tuple[int, int, int, int]] = {}
    for net in netlist.nets:
        source = src_of[net.driver]
        sinks = [sink_of[s] for s in net.sinks]
        net_terms[net.id] = (source, sinks)
        txs = [int(xs[source])] + [int(xs[t]) for t in sinks]
        tys = [int(ys[source])] + [int(ys[t]) for t in sinks]
        net_bbox[net.id] = (
            min(txs) - bbox_margin, max(txs) + bbox_margin,
            min(tys) - bbox_margin, max(tys) + bbox_margin,
        )
    full_bounds = (-(1 << 30), 1 << 30, -(1 << 30), 1 << 30)

    # Per-slot label planes, flat-indexed slot * num_nodes + node.  The batch
    # is clamped so the planes stay a bounded memory cost on huge graphs.
    nslots = max(1, min(batch, max(4, (1 << 23) // max(1, num_nodes))))
    plane = nslots * num_nodes
    # One extra "trash" cell at the end: its vis stamp is never a live
    # generation, so padded gathers read as unreached.
    vis = np.zeros(plane + 1, dtype=np.int64)
    g_plane = np.zeros(plane + 1, dtype=np.float64)
    prev = np.full(plane + 1, -1, dtype=np.int64)
    slot_base = np.arange(nslots, dtype=np.int64) * num_nodes
    generation = 0

    IPIN = RRNodeType.IPIN
    SINK = RRNodeType.SINK

    def refresh_cost() -> None:
        nonlocal bh, cost
        bh = base_cost + history
        over = occupancy + 1 - cap_arr
        cost = np.where(over > 0, bh * (1.0 + pres_fac * over), bh)

    def commit(nodes: np.ndarray, d: int) -> None:
        """Add ``d`` occupancy on ``nodes`` (dups allowed) and reprice them."""
        nonlocal commit_seq
        commit_seq += 1
        np.add.at(occupancy, nodes, d)
        aff = np.unique(nodes)
        over = occupancy[aff] + 1 - cap_arr[aff]
        cost[aff] = np.where(over > 0, bh[aff] * (1.0 + pres_fac * over), bh[aff])
        over_mask[aff] = occupancy[aff] > cap_arr[aff]
        commit_stamp[aff] = commit_seq

    # ------------------------------------------------------------------
    # Continuous batched search engine.
    #
    # Slots hold *nets*: a slot seeds one connection search at a time and
    # refills the moment it settles, so expansion rounds run at full batch
    # width with no per-wave setup/teardown barriers and no straggler
    # rounds.  Nets are admitted to slots only while their search boxes
    # are pairwise disjoint (tracked on a device-coordinate grid), so
    # concurrent searches cannot interact at all and the committed
    # trajectory is identical to a sequential PathFinder ordering of the
    # same connections.
    # ------------------------------------------------------------------
    grid_w = int(xs.max()) + 1
    grid_h = int(ys.max()) + 1

    # Fixed-stride per-slot entry tables (padded with a trash plane cell
    # whose vis stamp never matches a live generation) let the completion
    # scan run as one 2-D gather/min instead of per-slot reductions.
    esz = 1
    for sink in set(sink_of.values()):
        esz = max(esz, view.entry_arrays(sink)[0].size)
    trash = plane  # index of the extra plane cell

    s_gen = np.zeros(nslots, dtype=np.int64)  # active generation, 0 = idle
    s_xlo = np.zeros(nslots, dtype=np.int64)
    s_xhi = np.zeros(nslots, dtype=np.int64)
    s_ylo = np.zeros(nslots, dtype=np.int64)
    s_yhi = np.zeros(nslots, dtype=np.int64)
    s_tx = np.zeros(nslots, dtype=np.int64)
    s_ty = np.zeros(nslots, dtype=np.int64)
    s_best = np.full(nslots, np.inf)
    s_bwire = np.full(nslots, -1, dtype=np.int64)
    s_bipin = np.full(nslots, -1, dtype=np.int64)
    s_crit = np.zeros(nslots)          #: per-slot connection criticality
    s_pfl = np.full(nslots, _PIN_FLOOR)  #: per-slot (1-crit)-scaled pin floor
    bucket = np.full(nslots, np.inf)
    ew_flat2 = np.full((nslots, esz), trash, dtype=np.int64)
    ew_pc2 = np.full((nslots, esz), np.inf)
    ew_wire2 = np.zeros((nslots, esz), dtype=np.int64)
    ew_ipin2 = np.zeros((nslots, esz), dtype=np.int64)
    s_start = np.zeros(nslots, dtype=np.int64)
    is_entry = np.zeros(plane + 1, dtype=bool)
    commit_stamp = np.zeros(num_nodes, dtype=np.int64)
    commit_seq = 0
    #: fraction of a net's box that may already be covered by active
    #: searches at admission time (0 = strictly disjoint boxes).
    _ADMIT_PRESSURE = 0.5

    # Per-net route trees as ordered (target, path, attach) connections --
    # the same layout and rip-up granularity as the astar kernel.
    net_conns: Dict[int, List[Tuple[int, List[int], int]]] = {}

    class _NetWork:
        """Mutable per-net routing state for one negotiation iteration."""

        __slots__ = (
            "net_id", "targets", "tree", "tree_set", "conns", "bounds", "rip",
            "original_conns",
        )

        def __init__(self, net_id, targets, tree, tree_set, conns, bounds,
                     rip=None, original_conns=None):
            self.net_id = net_id
            self.targets = targets
            self.tree = tree
            self.tree_set = tree_set
            self.conns = conns
            self.bounds = bounds
            #: nodes of this net's ripped connections, released lazily at
            #: slot admission so nets still waiting keep seeing them priced.
            self.rip = rip
            #: pre-rip connection list, restored whole if the net heals
            #: before it is admitted.
            self.original_conns = original_conns

    def _next_connection(work: _NetWork, dup_bumps: List[int]) -> Optional[int]:
        """Pop the next target, committing duplicate-sink connections inline."""
        while work.targets:
            target = work.targets.pop(0)
            if target in work.tree_set:
                dup_bumps.append(target)
                work.conns.append((target, [], target))
                continue
            return target
        return None

    def _drive(items: List[_NetWork]) -> None:
        """Route all pending connections of ``items`` on the slot pipeline.

        Concurrency control is two-layered.  Admission bounds the *pressure*
        on any device region: a net is admitted only while the fraction of
        its box already covered by active searches stays under a cap, which
        limits how many blind searches can pile into one neighbourhood
        between price updates.  Consistency is then restored at commit time
        by optimistic concurrency: every commit stamps its nodes with a
        sequence number, and a path that crosses a stamp newer than its
        search's start was priced off a stale snapshot -- it is re-searched
        (up to a small retry cap) instead of committing a blind collision.
        """
        nonlocal generation, commit_seq
        queue = deque(items)
        grid = np.zeros((grid_w, grid_h), dtype=np.int16)
        free = list(range(nslots - 1, -1, -1))
        slot_work: List[Optional[_NetWork]] = [None] * nslots
        slot_target = [-1] * nslots
        slot_esc = [0] * nslots
        slot_retry = [0] * nslots
        slot_region: List[Optional[Tuple[int, int, int, int]]] = [None] * nslots
        active = 0
        exclusive: deque = deque()  # failed searches awaiting a solo retry
        dup_buf: List[int] = []
        new_flat: List[np.ndarray] = []
        new_g: List[np.ndarray] = []
        new_f: List[np.ndarray] = []

        def begin_search(s: int, work: _NetWork, target: int, bounds) -> None:
            nonlocal generation
            generation += 1
            gen = generation
            s_gen[s] = gen
            s_start[s] = commit_seq
            xlo, xhi, ylo, yhi = bounds
            s_xlo[s] = xlo
            s_xhi[s] = xhi
            s_ylo[s] = ylo
            s_yhi[s] = yhi
            tx = int(xs[target])
            ty = int(ys[target])
            s_tx[s] = tx
            s_ty[s] = ty
            s_best[s] = np.inf
            is_entry[ew_flat2[s]] = False
            wires, ipins = view.entry_arrays(target)
            k = wires.size
            base_s = int(slot_base[s])
            row = ew_flat2[s]
            row[:k] = base_s + wires
            row[k:] = trash
            if timing_mode:
                cid = cid_of.get((work.net_id, target))
                crt = float(conn_crit[cid]) if cid is not None else 0.0
                s_crit[s] = crt
                s_pfl[s] = (1.0 - crt) * _PIN_FLOOR
                ew_pc2[s, :k] = (1.0 - crt) * (cost[ipins] + cost[target]) + crt * (
                    delay_arr[ipins] + delay_arr[target]
                )
            else:
                ew_pc2[s, :k] = cost[ipins] + cost[target]
            ew_pc2[s, k:] = np.inf
            ew_wire2[s, :k] = wires
            ew_ipin2[s, :k] = ipins
            is_entry[row] = True
            is_entry[trash] = False
            # Seed with the net's route tree, bbox-masked; IPIN/SINK tree
            # nodes are dead ends in the filtered view.
            tree_arr = np.asarray(work.tree, dtype=np.int64)
            tt = ntype[tree_arr]
            x = xs[tree_arr]
            y = ys[tree_arr]
            ok = (
                (tt != IPIN) & (tt != SINK)
                & (x >= xlo) & (x <= xhi) & (y >= ylo) & (y <= yhi)
            )
            seeds = tree_arr[ok]
            flat = base_s + seeds
            vis[flat] = gen
            g_plane[flat] = 0.0
            prev[flat] = -1
            f = (np.abs(x[ok] - tx) + np.abs(y[ok] - ty)) * fac
            bucket[s] = float(f.min()) if f.size else np.inf
            new_flat.append(flat)
            new_g.append(np.zeros(seeds.size))
            new_f.append(f)
            scan_slot(s)  # tree-adjacent completions prime the bound

        def try_admit() -> None:
            """Fill free slots with queued nets while region pressure allows.

            Deferred (over-pressure) nets rotate to the back of the queue:
            net ids are spatially correlated, so keeping a blocked cluster
            at the front would starve the scan of admissible work.
            """
            nonlocal active
            scanned = 0
            deferred: List[_NetWork] = []
            while queue and free and not exclusive and scanned < 2 * nslots:
                work = queue.popleft()
                scanned += 1
                if work.rip is not None and not over_mask[
                    np.asarray(work.rip, dtype=np.int64)
                ].any():
                    # Healed while waiting: every fighter it was ripped over
                    # has already moved away, so keep the old connections
                    # (nothing was released yet -- the rip is lazy).
                    work.conns = work.original_conns
                    work.rip = None
                    work.targets = []
                    continue
                xlo, xhi, ylo, yhi = work.bounds
                cx0, cy0 = max(0, xlo), max(0, ylo)
                region = grid[cx0: xhi + 1, cy0: yhi + 1]
                if np.count_nonzero(region) > _ADMIT_PRESSURE * region.size:
                    deferred.append(work)
                    continue
                target = _next_connection(work, dup_buf)
                if target is None:
                    continue  # net finished (all remaining sinks were dups)
                region += 1
                if work.rip:
                    commit(np.asarray(work.rip, dtype=np.int64), -1)
                    work.rip = None
                s = free.pop()
                slot_work[s] = work
                slot_target[s] = target
                slot_esc[s] = 0
                slot_retry[s] = 0
                slot_region[s] = (cx0, xhi + 1, cy0, yhi + 1)
                active += 1
                begin_search(s, work, target, work.bounds)
            queue.extend(deferred)
            if dup_buf:
                commit(np.asarray(dup_buf, dtype=np.int64), 1)
                dup_buf.clear()

        def release_slot(s: int) -> None:
            nonlocal active
            x0, x1, y0, y1 = slot_region[s]
            grid[x0:x1, y0:y1] -= 1
            slot_region[s] = None
            slot_work[s] = None
            s_gen[s] = 0
            s_best[s] = np.inf
            is_entry[ew_flat2[s]] = False
            ew_flat2[s, :] = trash
            ew_pc2[s, :] = np.inf
            free.append(s)
            active -= 1

        def scan_slot(s: int) -> None:
            """Exact completion scan of one slot's entry table."""
            row = ew_flat2[s]
            g_ew = np.where(vis[row] == s_gen[s], g_plane[row], np.inf)
            tot = g_ew + ew_pc2[s]
            k = int(np.argmin(tot))
            if tot[k] < s_best[s] - 1e-12:
                s_best[s] = tot[k]
                s_bwire[s] = ew_wire2[s, k]
                s_bipin[s] = ew_ipin2[s, k]

        def finish_search(s: int) -> None:
            """Slot ``s`` settled: commit its path, or escalate a failure."""
            work = slot_work[s]
            target = slot_target[s]
            if not np.isfinite(s_best[s]):
                # A too-tight box can starve a congested net of detour room;
                # retry against the whole device.  A full-device search
                # conflicts with every other slot, so it waits its turn in
                # the exclusive queue.
                if slot_esc[s] >= 1:
                    raise RuntimeError(
                        f"net {work.net_id} could not reach its sink; the "
                        "device is too small or the channel width is "
                        "insufficient even with congestion allowed"
                    )
                exclusive.append((work, target))
                release_slot(s)
                return
            path = [target, int(s_bipin[s])]
            n = int(s_bwire[s])
            base_s = int(slot_base[s])
            while n not in work.tree_set:
                path.append(n)
                n = int(prev[base_s + n])
            attach = n
            path_arr = np.asarray(path, dtype=np.int64)
            if (
                slot_retry[s] < 3
                and int(commit_stamp[path_arr].max()) > s_start[s]
            ):
                # Another slot occupied part of this path after the search
                # started: the price was stale, so re-search against the
                # fresh state rather than commit a blind collision.  After
                # three conflicts the path commits anyway and the normal
                # congestion negotiation absorbs it.
                slot_retry[s] += 1
                begin_search(s, work, target, (work.bounds, full_bounds)[slot_esc[s]])
                return
            for p in path:
                work.tree.append(p)
                work.tree_set.add(p)
            work.conns.append((target, path, attach))
            commit(path_arr, 1)
            if slot_esc[s]:
                # The exclusive retry ran alone; hand the net's remaining
                # connections back through normal admission.
                queue.appendleft(work)
                release_slot(s)
                return
            # The same net continues in the same slot (its box keeps its
            # pressure reservation), so its connections pipeline back to
            # back exactly like the scalar kernels route them.
            target = _next_connection(work, dup_buf)
            if dup_buf:
                commit(np.asarray(dup_buf, dtype=np.int64), 1)
                dup_buf.clear()
            if target is not None:
                slot_target[s] = target
                slot_retry[s] = 0
                begin_search(s, work, target, work.bounds)
            else:
                release_slot(s)

        p_flat = np.empty(0, dtype=np.int64)
        p_g = np.empty(0)
        p_f = np.empty(0)
        rounds_since_cleanup = 0
        try_admit()
        while True:
            if new_flat:
                p_flat = np.concatenate([p_flat] + new_flat)
                p_g = np.concatenate([p_g] + new_g)
                p_f = np.concatenate([p_f] + new_f)
                new_flat.clear()
                new_g.clear()
                new_f.clear()

            # Active selection on the raw pool: stale labels expand as
            # wasted work until the periodic cleanup drops them (their
            # relaxations lose every ``better`` comparison, so they cannot
            # corrupt the planes).
            slots_p = p_flat // num_nodes
            act = (
                (p_f <= bucket[slots_p] + delta)
                & (p_f < s_best[slots_p] - 1e-12)
            ) if p_flat.size else np.empty(0, dtype=bool)
            rounds_since_cleanup += 1
            if rounds_since_cleanup >= 4 or not act.any():
                rounds_since_cleanup = 0
                if deadline is not None:
                    # Polled on the periodic cleanup rounds only: one clock
                    # read every few vectorized expansion rounds, invisible
                    # to the search trajectory.
                    deadline.check("wavefront drive")
                if p_flat.size:
                    live = (
                        (vis[p_flat] == s_gen[slots_p])
                        & (p_g <= g_plane[p_flat] + 1e-12)
                        & (p_f < s_best[slots_p] - 1e-12)
                    )
                    p_flat = p_flat[live]
                    p_g = p_g[live]
                    p_f = p_f[live]
                    slots_p = slots_p[live]
                # Settled searches: an active generation with no live labels
                # cannot improve its completion any further.
                has_live = np.zeros(nslots, dtype=bool)
                if p_flat.size:
                    has_live[slots_p] = True
                settled = np.nonzero((s_gen > 0) & ~has_live)[0]
                if settled.size:
                    for s in settled:
                        finish_search(int(s))
                    try_admit()
                    if new_flat:
                        continue  # fold the refilled slots' seeds in first
                if not p_flat.size:
                    if exclusive and active == 0:
                        work, target = exclusive.popleft()
                        s = free.pop()
                        slot_work[s] = work
                        slot_target[s] = target
                        slot_esc[s] = 1
                        slot_retry[s] = 0
                        slot_region[s] = (0, grid_w, 0, grid_h)
                        grid += 1
                        active += 1
                        begin_search(s, work, target, full_bounds)
                        continue
                    if queue and active == 0:
                        try_admit()
                        if new_flat or queue or exclusive:
                            continue
                    if active:
                        continue
                    break
                # Stalled searches snap their bucket straight to their
                # cheapest pending key (a late-iteration pres_fac can jump
                # the frontier by hundreds of cost units).
                act = p_f <= bucket[slots_p] + delta
                has_act = np.zeros(nslots, dtype=bool)
                has_act[slots_p[act]] = True
                stalled = has_live & ~has_act
                if stalled.any():
                    minf = np.full(nslots, np.inf)
                    np.minimum.at(minf, slots_p, p_f)
                    np.maximum(bucket, minf, out=bucket, where=stalled)
                    if not act.any():
                        continue

            a_flat = p_flat[act]
            a_g = p_g[act]
            a_slots = slots_p[act]
            keep_p = ~act
            p_flat = p_flat[keep_p]
            p_g = p_g[keep_p]
            p_f = p_f[keep_p]

            nodes = a_flat - slot_base[a_slots]
            deg = csr_deg[nodes]
            n_edges = int(deg.sum())
            if n_edges == 0:
                continue
            # Edge-index construction: for node i with CSR rows
            # [start_i, start_i + deg_i), emit all rows, batched.
            cum = np.cumsum(deg)
            eidx = np.arange(n_edges, dtype=np.int64) + np.repeat(
                csr_ptr[nodes] - (cum - deg), deg
            )
            m = csr_dst[eidx]
            esl = np.repeat(a_slots, deg)
            if timing_mode:
                c_e = s_crit[esl]
                edge_cost = (1.0 - c_e) * cost[m] + c_e * delay_arr[m]
            else:
                edge_cost = cost[m]
            e_g = np.repeat(a_g, deg) + edge_cost
            ex = xs[m]
            ey = ys[m]
            dist = np.abs(ex - s_tx[esl]) + np.abs(ey - s_ty[esl])
            # Two push bounds, exactly as in the astar kernel: the weighted
            # heap key and the strictly admissible pin-floor bound.  They
            # are NOT folded into one (a pin floor on top of the 1.1
            # overweight over-prunes free-track detours -- measured quality
            # loss).  The pin floor is per-slot: scaled by (1 - crit) under
            # the timing objective.
            e_f = e_g + dist * fac
            best_e = s_best[esl]
            keep = (
                (ex >= s_xlo[esl]) & (ex <= s_xhi[esl])
                & (ey >= s_ylo[esl]) & (ey <= s_yhi[esl])
                & (e_f < best_e - 1e-12)
                & (e_g + dist + s_pfl[esl] < best_e - 1e-12)
            )
            if not keep.any():
                continue
            m = m[keep]
            esl = esl[keep]
            e_g = e_g[keep]
            e_f = e_f[keep]
            e_src = np.repeat(nodes, deg)[keep]
            m_flat = slot_base[esl] + m
            cur = np.where(vis[m_flat] == s_gen[esl], g_plane[m_flat], np.inf)
            better = e_g < cur - 1e-12
            if not better.any():
                continue
            m_flat = m_flat[better]
            e_g = e_g[better]
            e_f = e_f[better]
            e_src = e_src[better]
            esl = esl[better]
            # Scatter-min: cheapest relaxation per label wins (lexsort puts
            # the minimum g first within each m_flat run).
            order = np.lexsort((e_g, m_flat))
            m_flat = m_flat[order]
            e_g = e_g[order]
            e_f = e_f[order]
            e_src = e_src[order]
            esl = esl[order]
            first = np.empty(m_flat.size, dtype=bool)
            first[0] = True
            np.not_equal(m_flat[1:], m_flat[:-1], out=first[1:])
            m_flat = m_flat[first]
            e_g = e_g[first]
            e_f = e_f[first]
            e_src = e_src[first]
            esl = esl[first]
            vis[m_flat] = s_gen[esl]
            g_plane[m_flat] = e_g
            prev[m_flat] = e_src
            p_flat = np.concatenate([p_flat, m_flat])
            p_g = np.concatenate([p_g, e_g])
            p_f = np.concatenate([p_f, e_f])
            # Event-driven completion bounds: rescan only the searches whose
            # entry-wire labels just improved.
            hit = is_entry[m_flat]
            if hit.any():
                for s in set(esl[hit].tolist()):
                    scan_slot(s)

    def _net_route_of(net_id: int) -> NetRoute:
        conns = net_conns[net_id]
        nodes = [net_terms[net_id][0]]
        for _, path, _ in conns:
            nodes.extend(path)
        return NetRoute(net_id, nodes, connections=list(conns))

    iteration = 0
    success = False
    net_ids = [net.id for net in netlist.nets]
    streak: Dict[int, int] = {}

    def _build_reroute_items(congested: List[int]) -> List[_NetWork]:
        """Decide the connection-level rips of every congested net.

        Nothing is released here -- each :class:`_NetWork` carries its rip
        list and the pre-rip connections, so the release happens at wave
        admission (or never, if the net heals while it waits).
        """
        batch_items: List[_NetWork] = []
        for nid in congested:
            # Rip the congested connections (and their dependent branches);
            # forward scan in route order closes the chain.
            source = net_terms[nid][0]
            kept: List[Tuple[int, List[int], int]] = []
            ripped: List[Tuple[int, List[int], int]] = []
            ripped_nodes: Set[int] = set()
            for conn in net_conns[nid]:
                target, path, attach = conn
                usage = path if path else [target]
                if (
                    attach in ripped_nodes
                    or target in ripped_nodes
                    or bool(over_mask[np.asarray(usage, dtype=np.int64)].any())
                ):
                    ripped.append(conn)
                    ripped_nodes.update(usage)
                else:
                    kept.append(conn)
            if not ripped:
                continue
            rip_nodes = [
                n
                for target, path, _ in ripped
                for n in (path if path else [target])
            ]
            tree = [source]
            tree_set = {source}
            for _, path, _ in kept:
                for n in path:
                    tree.append(n)
                    tree_set.add(n)
            # A net congested for several consecutive iterations is stuck in
            # a duel its box is too tight to resolve: grow the box so the
            # search can reach free capacity further out.
            grow = 3 * max(0, streak.get(nid, 0) - 2)
            xlo, xhi, ylo, yhi = net_bbox[nid]
            bounds = (xlo - grow, xhi + grow, ylo - grow, yhi + grow)
            batch_items.append(
                _NetWork(
                    nid, [c[0] for c in ripped], tree, tree_set, kept,
                    bounds, rip=rip_nodes, original_conns=net_conns[nid],
                )
            )
        return batch_items


    # Convergence telemetry (appends + clock reads only: trajectory-neutral).
    tl_overuse: List[int] = []
    tl_rerouted: List[int] = []
    tl_wall_ms: List[float] = []

    for iteration in range(1, max_iterations + 1):
        if deadline is not None:
            deadline.check(f"wavefront iteration {iteration}")
        it_t0 = time.perf_counter()
        rerouted = 0
        refresh_cost()
        if iteration == 1:
            # One global queue: waves stay full until the work runs out, and
            # high-fanout nets pipeline their connections while other nets
            # fill the remaining slots.
            items = []
            for nid in net_ids:
                source, sinks = net_terms[nid]
                sx, sy = int(xs[source]), int(ys[source])
                order = sorted(
                    sinks,
                    key=lambda t: -(abs(int(xs[t]) - sx) + abs(int(ys[t]) - sy)),
                )
                conns: List[Tuple[int, List[int], int]] = []
                net_conns[nid] = conns
                items.append(
                    _NetWork(nid, order, [source], {source}, conns, net_bbox[nid])
                )
            _drive(items)
            rerouted = len(net_ids)
            for nid in net_ids:
                routes[nid] = _net_route_of(nid)
        else:
            # Incremental re-route: every net occupying an overused node has
            # its congested connections ripped (the release itself happens
            # lazily at wave admission) and re-routed.  The scan repeats up
            # to three passes per iteration: a re-route that displaces
            # congestion onto a net scanned earlier would otherwise wait a
            # whole iteration for the cascade to continue (the scalar
            # kernels get this for free from their live overuse set).
            for _pass in range(3):
                congested = [
                    nid
                    for nid in net_ids
                    if over_mask[np.asarray(routes[nid].nodes, dtype=np.int64)].any()
                ]
                if not congested:
                    break
                if _pass == 0:
                    streak = {nid: streak.get(nid, 0) + 1 for nid in congested}
                # Freshly-conflicted nets move first; a net that has lost
                # many rounds in a row goes last and usually finds its wire
                # vacated by the time it is re-checked -- without this, the
                # lowest net id plays whack-a-mole against a rotation of
                # sitting occupants.
                congested.sort(key=lambda nid: (streak.get(nid, 0), nid))
                batch_items = _build_reroute_items(congested)
                if not batch_items:
                    break
                _drive(batch_items)
                rerouted += len(batch_items)
                for work in batch_items:
                    net_conns[work.net_id] = work.conns
                    routes[work.net_id] = _net_route_of(work.net_id)

        tl_overuse.append(int(np.count_nonzero(over_mask)))
        tl_rerouted.append(rerouted)
        tl_wall_ms.append((time.perf_counter() - it_t0) * 1000.0)
        if not over_mask.any():
            success = True
            break
        over_nodes = np.nonzero(over_mask)[0]
        history[over_nodes] += hist_fac * (occupancy[over_nodes] - cap_arr[over_nodes])
        pres_fac *= pres_fac_mult
        if timing_mode:
            # Re-time the current route trees on the flat forest: the next
            # iteration's re-routes price against fresh criticalities.
            conn_crit = tracker.update_flat(routes)

    # Converged routes only + timing-tracker fragment-cache reuse, as in
    # the astar kernel above.
    forest = None
    if success:
        frag_cache = tracker._frag_cache if tracker is not None else None
        forest = build_route_forest(routes, rr, cache=frag_cache)
    telemetry = {
        "kernel": "wavefront",
        "overuse_per_iteration": tl_overuse,
        "rerouted_nets_per_iteration": tl_rerouted,
        "iteration_wall_ms": tl_wall_ms,
        "sta_retimes": tracker.updates if tracker is not None else 0,
    }
    return _assemble_result(
        rr, routes, occupancy.astype(np.int32), cap_arr.astype(np.int32),
        success, iteration, forest=forest, telemetry=telemetry,
    )


def _route_fast(
    netlist: PhysicalNetlist,
    placement: Placement,
    device: Device,
    max_iterations: int = 25,
    pres_fac_init: float = 0.6,
    pres_fac_mult: float = 1.8,
    hist_fac: float = 0.4,
    astar_fac: float = 1.1,
    deadline: Optional[Deadline] = None,
) -> RoutingResult:
    """PR 1 kernel: congestion cost vector, unpruned wavefront (baseline)."""
    rr = device.rr_graph
    num_nodes = rr.num_nodes

    base_cost = _base_cost_array(rr)
    cap_arr = rr.node_capacity.astype(np.int32)
    history = np.zeros(num_nodes, dtype=np.float64)

    # Flat Python mirrors of the RR-graph arrays for the search inner loop.
    cap = cap_arr.tolist()
    ntype = rr.node_type.tolist()
    xs = rr.node_x.tolist()
    ys = rr.node_y.tolist()
    ptr = rr.edge_ptr.tolist()
    dst = rr.edge_dst.tolist()
    adj = [dst[ptr[i]: ptr[i + 1]] for i in range(num_nodes)]
    occupancy = [0] * num_nodes

    src_of, sink_of = terminal_rr_nodes(netlist, placement, rr)

    routes: Dict[int, NetRoute] = {}
    net_terms: Dict[int, Tuple[int, List[int]]] = {}
    for net in netlist.nets:
        net_terms[net.id] = (src_of[net.driver], [sink_of[s] for s in net.sinks])

    # Search bookkeeping with generation stamps (avoids clearing big arrays).
    visited_gen = [0] * num_nodes
    cost_so_far = [0.0] * num_nodes
    prev_node = [-1] * num_nodes
    generation = 0

    SINK = RRNodeType.SINK
    heappush = heapq.heappush
    heappop = heapq.heappop

    # Per-iteration congestion costs: cost[n] = (base + history)[n] * present.
    # Refreshed vectorized at iteration start, entry-wise on occupancy change.
    bh: List[float] = []
    cost: List[float] = []
    pres_fac = pres_fac_init

    def bump(n: int, d: int) -> None:
        occupancy[n] += d
        over = occupancy[n] + 1 - cap[n]
        cost[n] = bh[n] * (1.0 + pres_fac * over) if over > 0 else bh[n]

    def route_net(net_id: int) -> NetRoute:
        nonlocal generation
        if deadline is not None:
            deadline.check(f"fast net {net_id}")
        source, sinks = net_terms[net_id]
        tree: List[int] = [source]
        tree_set: Set[int] = {source}
        # Route sinks farthest-first (VPR heuristic).
        sx, sy = xs[source], ys[source]
        order = sorted(sinks, key=lambda t: -(abs(xs[t] - sx) + abs(ys[t] - sy)))
        for target in order:
            if target in tree_set:
                bump(target, 1)
                continue
            generation += 1
            gen = generation
            tx, ty = xs[target], ys[target]
            heap: List[Tuple[float, float, int]] = []
            for n in tree:
                h = (abs(xs[n] - tx) + abs(ys[n] - ty)) * astar_fac
                visited_gen[n] = gen
                cost_so_far[n] = 0.0
                prev_node[n] = -1
                heappush(heap, (h, 0.0, n))
            found = False
            while heap:
                _, g, n = heappop(heap)
                if g > cost_so_far[n] + 1e-12:
                    continue  # stale heap entry
                if n == target:
                    found = True
                    break
                for m in adj[n]:
                    if ntype[m] == SINK and m != target:
                        continue
                    new_cost = g + cost[m]
                    if visited_gen[m] != gen or new_cost < cost_so_far[m] - 1e-12:
                        visited_gen[m] = gen
                        cost_so_far[m] = new_cost
                        prev_node[m] = n
                        h = (abs(xs[m] - tx) + abs(ys[m] - ty)) * astar_fac
                        heappush(heap, (new_cost + h, new_cost, m))
            if not found:
                raise RuntimeError(
                    f"net {net_id} could not reach its sink; the device is too small "
                    "or the channel width is insufficient even with congestion allowed"
                )
            # Backtrace and merge the new path into the route tree.
            path = []
            n = target
            while n != -1 and n not in tree_set:
                path.append(n)
                n = prev_node[n]
            for n in path:
                tree_set.add(n)
                tree.append(n)
                bump(n, 1)
        return NetRoute(net_id, tree)

    def rip_up(net_route: NetRoute) -> None:
        source = net_terms[net_route.net_id][0]
        for n in net_route.nodes:
            if n != source:
                bump(n, -1)

    iteration = 0
    success = False
    net_ids = [net.id for net in netlist.nets]
    tl_overuse: List[int] = []
    tl_rerouted: List[int] = []
    tl_wall_ms: List[float] = []

    for iteration in range(1, max_iterations + 1):
        it_t0 = time.perf_counter()
        # Refresh the congestion cost vector for this iteration's pres_fac
        # and history (occupancy-driven entries are kept current by bump()).
        occ_arr = np.asarray(occupancy, dtype=np.int32)
        base_hist = base_cost + history
        over_arr = occ_arr + 1 - cap_arr
        cost_arr = np.where(over_arr > 0, base_hist * (1.0 + pres_fac * over_arr), base_hist)
        bh = base_hist.tolist()
        cost = cost_arr.tolist()

        if iteration == 1:
            targets = net_ids
        else:
            # Re-route only nets that currently use overused nodes.
            targets = [
                nid
                for nid in net_ids
                if any(occupancy[n] > cap[n] for n in routes[nid].nodes)
            ]
        for nid in targets:
            if nid in routes:
                rip_up(routes[nid])
            routes[nid] = route_net(nid)

        occ_arr = np.asarray(occupancy, dtype=np.int32)
        over_nodes = int(np.count_nonzero(occ_arr > cap_arr))
        tl_overuse.append(over_nodes)
        tl_rerouted.append(len(targets))
        tl_wall_ms.append((time.perf_counter() - it_t0) * 1000.0)
        if over_nodes == 0:
            success = True
            break
        history += hist_fac * np.maximum(occ_arr - cap_arr, 0)
        pres_fac *= pres_fac_mult

    occ_arr = np.asarray(occupancy, dtype=np.int32)
    telemetry = {
        "kernel": "fast",
        "overuse_per_iteration": tl_overuse,
        "rerouted_nets_per_iteration": tl_rerouted,
        "iteration_wall_ms": tl_wall_ms,
    }
    return _assemble_result(
        rr, routes, occ_arr, cap_arr, success, iteration, telemetry=telemetry
    )


def _assemble_result(
    rr: RRGraph,
    routes: Dict[int, NetRoute],
    occupancy: np.ndarray,
    capacity: np.ndarray,
    success: bool,
    iteration: int,
    forest: Optional[RouteForest] = None,
    telemetry: Optional[Dict[str, Any]] = None,
) -> RoutingResult:
    wire_mask = (rr.node_type == RRNodeType.CHANX) | (rr.node_type == RRNodeType.CHANY)
    if forest is not None:
        wirelength = forest.wirelength(wire_mask)
    else:
        wirelength = 0
        for r in routes.values():
            wirelength += sum(1 for n in r.nodes if wire_mask[n])
    max_chan_occ = int(occupancy[wire_mask].max()) if wire_mask.any() else 0
    if telemetry is not None:
        # One registry merge per route call (see repro.obs.metrics): the
        # process-wide counters aggregate across calls, while the telemetry
        # dict on the result stays per-run.
        obs_metrics.merge(
            {
                "route.calls": 1,
                "route.iterations": iteration,
                "route.nodes_expanded": telemetry.get("nodes_expanded", 0),
                "route.rerouted_nets": sum(
                    telemetry.get("rerouted_nets_per_iteration", ())
                ),
            }
        )
    return RoutingResult(
        routes=routes,
        success=success,
        iterations=iteration,
        wirelength=wirelength,
        overused_nodes=int(np.count_nonzero(occupancy > capacity)),
        max_channel_occupancy=max_chan_occ,
        forest=forest,
        telemetry=telemetry,
    )


def routing_to_payload(result: RoutingResult) -> Optional[Dict[str, object]]:
    """JSON-serializable routing result, or ``None`` without a forest.

    The route trees ride along as the flat forest's int lists, so a
    :class:`~repro.par.cache.PaRCache` hit can re-hydrate the full result
    (see :func:`routing_from_payload`) instead of re-routing.
    """
    if result.forest is None:
        return None
    return {
        "success": result.success,
        "iterations": result.iterations,
        "wirelength": result.wirelength,
        "overused_nodes": result.overused_nodes,
        "max_channel_occupancy": result.max_channel_occupancy,
        "kernel": result.kernel,
        "forest": result.forest.to_payload(),
    }


def routing_from_payload(payload: Dict[str, object]) -> Optional[RoutingResult]:
    """Re-hydrate a :class:`RoutingResult` from a cached payload.

    Returns ``None`` when the payload predates route-forest serialization
    or fails validation -- callers treat that as a cache miss.
    """
    raw = payload.get("forest")
    if raw is None:
        return None
    try:
        forest = RouteForest.from_payload(raw)
        return RoutingResult(
            routes=forest.to_net_routes(),
            success=bool(payload["success"]),
            iterations=int(payload["iterations"]),
            wirelength=int(payload["wirelength"]),
            overused_nodes=int(payload["overused_nodes"]),
            max_channel_occupancy=int(payload["max_channel_occupancy"]),
            forest=forest,
            kernel=payload.get("kernel"),
        )
    except (KeyError, TypeError, ValueError):
        return None


def _route_reference(
    netlist: PhysicalNetlist,
    placement: Placement,
    device: Device,
    max_iterations: int = 25,
    pres_fac_init: float = 0.6,
    pres_fac_mult: float = 1.8,
    hist_fac: float = 0.4,
    astar_fac: float = 1.1,
    deadline: Optional[Deadline] = None,
) -> RoutingResult:
    """Original router: per-edge ``node_cost()`` calls (benchmark baseline)."""
    rr = device.rr_graph
    num_nodes = rr.num_nodes

    base_cost = _base_cost_array(rr)
    capacity = rr.node_capacity.astype(np.int32)
    occupancy = np.zeros(num_nodes, dtype=np.int32)
    history = np.zeros(num_nodes, dtype=np.float64)

    node_x = rr.node_x.astype(np.int32)
    node_y = rr.node_y.astype(np.int32)
    edge_ptr = rr.edge_ptr
    edge_dst = rr.edge_dst

    src_of, sink_of = terminal_rr_nodes(netlist, placement, rr)

    routes: Dict[int, NetRoute] = {}
    net_terms: Dict[int, Tuple[int, List[int]]] = {}
    for net in netlist.nets:
        net_terms[net.id] = (src_of[net.driver], [sink_of[s] for s in net.sinks])

    visited_gen = np.zeros(num_nodes, dtype=np.int64)
    cost_so_far = np.zeros(num_nodes, dtype=np.float64)
    prev_node = np.full(num_nodes, -1, dtype=np.int64)
    generation = 0

    def node_cost(n: int, pres_fac: float) -> float:
        over = occupancy[n] + 1 - capacity[n]
        pres = 1.0 + pres_fac * over if over > 0 else 1.0
        return (base_cost[n] + history[n]) * pres

    def route_net(net_id: int, pres_fac: float) -> NetRoute:
        nonlocal generation
        if deadline is not None:
            deadline.check(f"reference net {net_id}")
        source, sinks = net_terms[net_id]
        tree: List[int] = [source]
        tree_set: Set[int] = {source}
        sx, sy = int(node_x[source]), int(node_y[source])
        order = sorted(
            sinks,
            key=lambda t: -(abs(int(node_x[t]) - sx) + abs(int(node_y[t]) - sy)),
        )
        for target in order:
            if target in tree_set:
                occupancy[target] += 1
                continue
            generation += 1
            gen = generation
            tx, ty = int(node_x[target]), int(node_y[target])
            heap: List[Tuple[float, float, int]] = []
            for n in tree:
                h = (abs(int(node_x[n]) - tx) + abs(int(node_y[n]) - ty)) * astar_fac
                visited_gen[n] = gen
                cost_so_far[n] = 0.0
                prev_node[n] = -1
                heapq.heappush(heap, (h, 0.0, n))
            found = False
            while heap:
                _, g, n = heapq.heappop(heap)
                if g > cost_so_far[n] + 1e-12:
                    continue  # stale heap entry
                if n == target:
                    found = True
                    break
                for m in edge_dst[edge_ptr[n] : edge_ptr[n + 1]]:
                    m = int(m)
                    ntype = rr.node_type[m]
                    if ntype == RRNodeType.SINK and m != target:
                        continue
                    new_cost = g + node_cost(m, pres_fac)
                    if visited_gen[m] != gen or new_cost < cost_so_far[m] - 1e-12:
                        visited_gen[m] = gen
                        cost_so_far[m] = new_cost
                        prev_node[m] = n
                        h = (abs(int(node_x[m]) - tx) + abs(int(node_y[m]) - ty)) * astar_fac
                        heapq.heappush(heap, (new_cost + h, new_cost, m))
            if not found:
                raise RuntimeError(
                    f"net {net_id} could not reach its sink; the device is too small "
                    "or the channel width is insufficient even with congestion allowed"
                )
            path = []
            n = target
            while n != -1 and n not in tree_set:
                path.append(n)
                n = int(prev_node[n])
            for n in path:
                tree_set.add(n)
                tree.append(n)
                occupancy[n] += 1
        return NetRoute(net_id, tree)

    def rip_up(net_route: NetRoute) -> None:
        for n in net_route.nodes:
            if n != net_terms[net_route.net_id][0]:
                occupancy[n] -= 1

    pres_fac = pres_fac_init
    iteration = 0
    success = False
    net_ids = [net.id for net in netlist.nets]
    tl_overuse: List[int] = []
    tl_rerouted: List[int] = []
    tl_wall_ms: List[float] = []

    for iteration in range(1, max_iterations + 1):
        it_t0 = time.perf_counter()
        if iteration == 1:
            targets = net_ids
        else:
            over = occupancy > capacity
            targets = [
                nid
                for nid in net_ids
                if any(over[n] for n in routes[nid].nodes)
            ]
        for nid in targets:
            if nid in routes:
                rip_up(routes[nid])
            routes[nid] = route_net(nid, pres_fac)

        over_nodes = int(np.count_nonzero(occupancy > capacity))
        tl_overuse.append(over_nodes)
        tl_rerouted.append(len(targets))
        tl_wall_ms.append((time.perf_counter() - it_t0) * 1000.0)
        if over_nodes == 0:
            success = True
            break
        history += hist_fac * np.maximum(occupancy - capacity, 0)
        pres_fac *= pres_fac_mult

    telemetry = {
        "kernel": "reference",
        "overuse_per_iteration": tl_overuse,
        "rerouted_nets_per_iteration": tl_rerouted,
        "iteration_wall_ms": tl_wall_ms,
    }
    return _assemble_result(
        rr, routes, occupancy, capacity, success, iteration, telemetry=telemetry
    )
