"""TROUTE: PathFinder negotiated-congestion routing.

Re-implementation of the VPR/TPaR router: every net is routed over the
routing-resource graph with an A*-guided Dijkstra search; congestion is
resolved by iteratively re-routing nets through overused nodes while the
present-congestion penalty grows and a history cost accumulates (PathFinder).

Two search kernels live behind :func:`route`:

* ``kernel="fast"`` (default) -- the per-node congestion cost
  ``(base + history) * present_factor`` is precomputed as a single NumPy
  vector at the start of every PathFinder iteration and refreshed entry-wise
  on rip-up/commit (the only events that change occupancy); the wavefront
  expansion runs over plain Python lists (CSR adjacency, coordinates, costs),
  avoiding the per-edge function call and NumPy scalar-indexing overhead of
  the original inner loop.
* ``kernel="reference"`` -- the original implementation calling
  ``node_cost()`` per expanded edge; kept as the benchmark baseline.

Both kernels perform identical floating-point operations in the same order,
so they expand identical wavefronts and return identical routes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..fpga.device import Device
from ..fpga.routing_graph import RRGraph, RRNodeType
from .netlist import PhysicalNetlist
from .placement import Placement

__all__ = ["RoutingResult", "route", "NetRoute"]


@dataclass
class NetRoute:
    """Route tree of one net: all RR nodes used (including pins and wires)."""

    net_id: int
    nodes: List[int] = field(default_factory=list)

    def wire_nodes(self, rr: RRGraph) -> List[int]:
        return [n for n in self.nodes if rr.is_wire(n)]


@dataclass
class RoutingResult:
    """Outcome of the routing step."""

    routes: Dict[int, NetRoute]
    success: bool
    iterations: int
    wirelength: int
    overused_nodes: int
    max_channel_occupancy: int

    def describe(self) -> str:
        status = "routable" if self.success else "CONGESTED"
        return (
            f"{status} after {self.iterations} iteration(s); "
            f"wirelength={self.wirelength}, peak channel occupancy="
            f"{self.max_channel_occupancy}, overused nodes={self.overused_nodes}"
        )


_BASE_COST = {
    RRNodeType.SOURCE: 0.1,
    RRNodeType.SINK: 0.1,
    RRNodeType.OPIN: 0.9,
    RRNodeType.IPIN: 0.9,
    RRNodeType.CHANX: 1.0,
    RRNodeType.CHANY: 1.0,
}


def _terminal_nodes(
    netlist: PhysicalNetlist, placement: Placement, rr: RRGraph
) -> Tuple[Dict[int, int], Dict[int, int]]:
    """Map each block to its SOURCE and SINK RR nodes."""
    src_of: Dict[int, int] = {}
    sink_of: Dict[int, int] = {}
    for block in netlist.blocks:
        site = placement.block_site.get(block.id)
        if site is None:
            continue
        if block.needs_logic_site:
            src_of[block.id] = rr.clb_source[(site.x, site.y)]
            sink_of[block.id] = rr.clb_sink[(site.x, site.y)]
        else:
            src_of[block.id] = rr.io_source[(site.x, site.y, site.subtile)]
            sink_of[block.id] = rr.io_sink[(site.x, site.y, site.subtile)]
    return src_of, sink_of


def _base_cost_array(rr: RRGraph) -> np.ndarray:
    base_cost = np.empty(rr.num_nodes, dtype=np.float64)
    for t, c in _BASE_COST.items():
        base_cost[rr.node_type == t] = c
    return base_cost


def route(
    netlist: PhysicalNetlist,
    placement: Placement,
    device: Device,
    max_iterations: int = 25,
    pres_fac_init: float = 0.6,
    pres_fac_mult: float = 1.8,
    hist_fac: float = 0.4,
    astar_fac: float = 1.1,
    kernel: str = "fast",
) -> RoutingResult:
    """Route all nets of a placed netlist on the device's RR graph.

    ``kernel`` selects the wavefront implementation (see module docstring);
    both kernels return identical routes.
    """
    if kernel == "reference":
        return _route_reference(
            netlist, placement, device,
            max_iterations=max_iterations, pres_fac_init=pres_fac_init,
            pres_fac_mult=pres_fac_mult, hist_fac=hist_fac, astar_fac=astar_fac,
        )
    if kernel != "fast":
        raise ValueError(f"unknown routing kernel {kernel!r}")

    rr = device.rr_graph
    num_nodes = rr.num_nodes

    base_cost = _base_cost_array(rr)
    cap_arr = rr.node_capacity.astype(np.int32)
    history = np.zeros(num_nodes, dtype=np.float64)

    # Flat Python mirrors of the RR-graph arrays for the search inner loop.
    cap = cap_arr.tolist()
    ntype = rr.node_type.tolist()
    xs = rr.node_x.tolist()
    ys = rr.node_y.tolist()
    ptr = rr.edge_ptr.tolist()
    dst = rr.edge_dst.tolist()
    adj = [dst[ptr[i]: ptr[i + 1]] for i in range(num_nodes)]
    occupancy = [0] * num_nodes

    src_of, sink_of = _terminal_nodes(netlist, placement, rr)

    routes: Dict[int, NetRoute] = {}
    net_terms: Dict[int, Tuple[int, List[int]]] = {}
    for net in netlist.nets:
        net_terms[net.id] = (src_of[net.driver], [sink_of[s] for s in net.sinks])

    # Search bookkeeping with generation stamps (avoids clearing big arrays).
    visited_gen = [0] * num_nodes
    cost_so_far = [0.0] * num_nodes
    prev_node = [-1] * num_nodes
    generation = 0

    SINK = RRNodeType.SINK
    heappush = heapq.heappush
    heappop = heapq.heappop

    # Per-iteration congestion costs: cost[n] = (base + history)[n] * present.
    # Refreshed vectorized at iteration start, entry-wise on occupancy change.
    bh: List[float] = []
    cost: List[float] = []
    pres_fac = pres_fac_init

    def bump(n: int, d: int) -> None:
        occupancy[n] += d
        over = occupancy[n] + 1 - cap[n]
        cost[n] = bh[n] * (1.0 + pres_fac * over) if over > 0 else bh[n]

    def route_net(net_id: int) -> NetRoute:
        nonlocal generation
        source, sinks = net_terms[net_id]
        tree: List[int] = [source]
        tree_set: Set[int] = {source}
        # Route sinks farthest-first (VPR heuristic).
        sx, sy = xs[source], ys[source]
        order = sorted(sinks, key=lambda t: -(abs(xs[t] - sx) + abs(ys[t] - sy)))
        for target in order:
            if target in tree_set:
                bump(target, 1)
                continue
            generation += 1
            gen = generation
            tx, ty = xs[target], ys[target]
            heap: List[Tuple[float, float, int]] = []
            for n in tree:
                h = (abs(xs[n] - tx) + abs(ys[n] - ty)) * astar_fac
                visited_gen[n] = gen
                cost_so_far[n] = 0.0
                prev_node[n] = -1
                heappush(heap, (h, 0.0, n))
            found = False
            while heap:
                _, g, n = heappop(heap)
                if g > cost_so_far[n] + 1e-12:
                    continue  # stale heap entry
                if n == target:
                    found = True
                    break
                for m in adj[n]:
                    if ntype[m] == SINK and m != target:
                        continue
                    new_cost = g + cost[m]
                    if visited_gen[m] != gen or new_cost < cost_so_far[m] - 1e-12:
                        visited_gen[m] = gen
                        cost_so_far[m] = new_cost
                        prev_node[m] = n
                        h = (abs(xs[m] - tx) + abs(ys[m] - ty)) * astar_fac
                        heappush(heap, (new_cost + h, new_cost, m))
            if not found:
                raise RuntimeError(
                    f"net {net_id} could not reach its sink; the device is too small "
                    "or the channel width is insufficient even with congestion allowed"
                )
            # Backtrace and merge the new path into the route tree.
            path = []
            n = target
            while n != -1 and n not in tree_set:
                path.append(n)
                n = prev_node[n]
            for n in path:
                tree_set.add(n)
                tree.append(n)
                bump(n, 1)
        return NetRoute(net_id, tree)

    def rip_up(net_route: NetRoute) -> None:
        source = net_terms[net_route.net_id][0]
        for n in net_route.nodes:
            if n != source:
                bump(n, -1)

    iteration = 0
    success = False
    net_ids = [net.id for net in netlist.nets]

    for iteration in range(1, max_iterations + 1):
        # Refresh the congestion cost vector for this iteration's pres_fac
        # and history (occupancy-driven entries are kept current by bump()).
        occ_arr = np.asarray(occupancy, dtype=np.int32)
        base_hist = base_cost + history
        over_arr = occ_arr + 1 - cap_arr
        cost_arr = np.where(over_arr > 0, base_hist * (1.0 + pres_fac * over_arr), base_hist)
        bh = base_hist.tolist()
        cost = cost_arr.tolist()

        if iteration == 1:
            targets = net_ids
        else:
            # Re-route only nets that currently use overused nodes.
            targets = [
                nid
                for nid in net_ids
                if any(occupancy[n] > cap[n] for n in routes[nid].nodes)
            ]
        for nid in targets:
            if nid in routes:
                rip_up(routes[nid])
            routes[nid] = route_net(nid)

        occ_arr = np.asarray(occupancy, dtype=np.int32)
        over_nodes = int(np.count_nonzero(occ_arr > cap_arr))
        if over_nodes == 0:
            success = True
            break
        history += hist_fac * np.maximum(occ_arr - cap_arr, 0)
        pres_fac *= pres_fac_mult

    occ_arr = np.asarray(occupancy, dtype=np.int32)
    return _assemble_result(rr, routes, occ_arr, cap_arr, success, iteration)


def _assemble_result(
    rr: RRGraph,
    routes: Dict[int, NetRoute],
    occupancy: np.ndarray,
    capacity: np.ndarray,
    success: bool,
    iteration: int,
) -> RoutingResult:
    wire_mask = (rr.node_type == RRNodeType.CHANX) | (rr.node_type == RRNodeType.CHANY)
    wirelength = 0
    for r in routes.values():
        wirelength += sum(1 for n in r.nodes if wire_mask[n])
    max_chan_occ = int(occupancy[wire_mask].max()) if wire_mask.any() else 0
    return RoutingResult(
        routes=routes,
        success=success,
        iterations=iteration,
        wirelength=wirelength,
        overused_nodes=int(np.count_nonzero(occupancy > capacity)),
        max_channel_occupancy=max_chan_occ,
    )


def _route_reference(
    netlist: PhysicalNetlist,
    placement: Placement,
    device: Device,
    max_iterations: int = 25,
    pres_fac_init: float = 0.6,
    pres_fac_mult: float = 1.8,
    hist_fac: float = 0.4,
    astar_fac: float = 1.1,
) -> RoutingResult:
    """Original router: per-edge ``node_cost()`` calls (benchmark baseline)."""
    rr = device.rr_graph
    num_nodes = rr.num_nodes

    base_cost = _base_cost_array(rr)
    capacity = rr.node_capacity.astype(np.int32)
    occupancy = np.zeros(num_nodes, dtype=np.int32)
    history = np.zeros(num_nodes, dtype=np.float64)

    node_x = rr.node_x.astype(np.int32)
    node_y = rr.node_y.astype(np.int32)
    edge_ptr = rr.edge_ptr
    edge_dst = rr.edge_dst

    src_of, sink_of = _terminal_nodes(netlist, placement, rr)

    routes: Dict[int, NetRoute] = {}
    net_terms: Dict[int, Tuple[int, List[int]]] = {}
    for net in netlist.nets:
        net_terms[net.id] = (src_of[net.driver], [sink_of[s] for s in net.sinks])

    visited_gen = np.zeros(num_nodes, dtype=np.int64)
    cost_so_far = np.zeros(num_nodes, dtype=np.float64)
    prev_node = np.full(num_nodes, -1, dtype=np.int64)
    generation = 0

    def node_cost(n: int, pres_fac: float) -> float:
        over = occupancy[n] + 1 - capacity[n]
        pres = 1.0 + pres_fac * over if over > 0 else 1.0
        return (base_cost[n] + history[n]) * pres

    def route_net(net_id: int, pres_fac: float) -> NetRoute:
        nonlocal generation
        source, sinks = net_terms[net_id]
        tree: List[int] = [source]
        tree_set: Set[int] = {source}
        sx, sy = int(node_x[source]), int(node_y[source])
        order = sorted(
            sinks,
            key=lambda t: -(abs(int(node_x[t]) - sx) + abs(int(node_y[t]) - sy)),
        )
        for target in order:
            if target in tree_set:
                occupancy[target] += 1
                continue
            generation += 1
            gen = generation
            tx, ty = int(node_x[target]), int(node_y[target])
            heap: List[Tuple[float, float, int]] = []
            for n in tree:
                h = (abs(int(node_x[n]) - tx) + abs(int(node_y[n]) - ty)) * astar_fac
                visited_gen[n] = gen
                cost_so_far[n] = 0.0
                prev_node[n] = -1
                heapq.heappush(heap, (h, 0.0, n))
            found = False
            while heap:
                _, g, n = heapq.heappop(heap)
                if g > cost_so_far[n] + 1e-12:
                    continue  # stale heap entry
                if n == target:
                    found = True
                    break
                for m in edge_dst[edge_ptr[n] : edge_ptr[n + 1]]:
                    m = int(m)
                    ntype = rr.node_type[m]
                    if ntype == RRNodeType.SINK and m != target:
                        continue
                    new_cost = g + node_cost(m, pres_fac)
                    if visited_gen[m] != gen or new_cost < cost_so_far[m] - 1e-12:
                        visited_gen[m] = gen
                        cost_so_far[m] = new_cost
                        prev_node[m] = n
                        h = (abs(int(node_x[m]) - tx) + abs(int(node_y[m]) - ty)) * astar_fac
                        heapq.heappush(heap, (new_cost + h, new_cost, m))
            if not found:
                raise RuntimeError(
                    f"net {net_id} could not reach its sink; the device is too small "
                    "or the channel width is insufficient even with congestion allowed"
                )
            path = []
            n = target
            while n != -1 and n not in tree_set:
                path.append(n)
                n = int(prev_node[n])
            for n in path:
                tree_set.add(n)
                tree.append(n)
                occupancy[n] += 1
        return NetRoute(net_id, tree)

    def rip_up(net_route: NetRoute) -> None:
        for n in net_route.nodes:
            if n != net_terms[net_route.net_id][0]:
                occupancy[n] -= 1

    pres_fac = pres_fac_init
    iteration = 0
    success = False
    net_ids = [net.id for net in netlist.nets]

    for iteration in range(1, max_iterations + 1):
        if iteration == 1:
            targets = net_ids
        else:
            over = occupancy > capacity
            targets = [
                nid
                for nid in net_ids
                if any(over[n] for n in routes[nid].nodes)
            ]
        for nid in targets:
            if nid in routes:
                rip_up(routes[nid])
            routes[nid] = route_net(nid, pres_fac)

        over_nodes = int(np.count_nonzero(occupancy > capacity))
        if over_nodes == 0:
            success = True
            break
        history += hist_fac * np.maximum(occupancy - capacity, 0)
        pres_fac *= pres_fac_mult

    return _assemble_result(rr, routes, occupancy, capacity, success, iteration)
