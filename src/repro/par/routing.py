"""TROUTE: PathFinder negotiated-congestion routing.

Re-implementation of the VPR/TPaR router: every net is routed over the
routing-resource graph with an A*-guided Dijkstra search; congestion is
resolved by iteratively re-routing nets through overused nodes while the
present-congestion penalty grows and a history cost accumulates (PathFinder).

Three search kernels live behind :func:`route`:

* ``kernel="astar"`` (default) -- directed search over a pin-filtered view of
  the RR graph (:meth:`repro.fpga.routing_graph.RRGraph.search_view`).  The
  wavefront expands over SOURCE/OPIN/CHANX/CHANY nodes only; input pins and
  sinks are reached through precomputed per-sink *entry maps* instead of
  being flooded, every expansion is pruned to the net's terminal bounding box
  (with a full-graph retry on the rare in-box failure), and the heap is keyed
  on ``cost + lookahead`` where the lookahead is the admissible Manhattan
  bound built from the precomputed RR-node coordinates.  Re-routing is
  incremental at *connection* granularity: after the first iteration only
  the congested connections of congested nets (plus the branches that hang
  off them) are ripped up and re-routed; untouched branches keep their
  paths across iterations.
* ``kernel="fast"`` -- the PR 1 kernel: same congestion cost vector and
  incremental re-routing, but the wavefront floods pins and is not
  bbox-pruned.  Identical floating-point trajectory to ``reference``.
* ``kernel="reference"`` -- the original implementation calling
  ``node_cost()`` per expanded edge; kept as the benchmark baseline.

``fast`` and ``reference`` perform identical floating-point operations in the
same order, so they expand identical wavefronts and return identical routes.
``astar`` trades that bit-identity for throughput; its route quality is
re-baselined in ``benchmarks/bench_hotpaths.py`` (wirelength within a few
percent of the reference route).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..fpga.device import Device
from ..fpga.routing_graph import RRGraph, RRNodeType
from .netlist import PhysicalNetlist
from .placement import Placement

__all__ = ["RoutingResult", "route", "NetRoute"]


@dataclass
class NetRoute:
    """Route tree of one net: all RR nodes used (including pins and wires)."""

    net_id: int
    nodes: List[int] = field(default_factory=list)

    def wire_nodes(self, rr: RRGraph) -> List[int]:
        return [n for n in self.nodes if rr.is_wire(n)]


@dataclass
class RoutingResult:
    """Outcome of the routing step."""

    routes: Dict[int, NetRoute]
    success: bool
    iterations: int
    wirelength: int
    overused_nodes: int
    max_channel_occupancy: int

    def describe(self) -> str:
        status = "routable" if self.success else "CONGESTED"
        return (
            f"{status} after {self.iterations} iteration(s); "
            f"wirelength={self.wirelength}, peak channel occupancy="
            f"{self.max_channel_occupancy}, overused nodes={self.overused_nodes}"
        )


_BASE_COST = {
    RRNodeType.SOURCE: 0.1,
    RRNodeType.SINK: 0.1,
    RRNodeType.OPIN: 0.9,
    RRNodeType.IPIN: 0.9,
    RRNodeType.CHANX: 1.0,
    RRNodeType.CHANY: 1.0,
}

#: Admissible floor of the cost still to pay after the last wire of a path:
#: one IPIN plus one SINK at base cost (congestion only ever adds to it).
#: Folding it into the A* lookahead makes the bound nearly tight, which
#: collapses the otherwise-huge tie plateau across the W parallel track grids.
_PIN_FLOOR = _BASE_COST[RRNodeType.IPIN] + _BASE_COST[RRNodeType.SINK]


def _terminal_nodes(
    netlist: PhysicalNetlist, placement: Placement, rr: RRGraph
) -> Tuple[Dict[int, int], Dict[int, int]]:
    """Map each block to its SOURCE and SINK RR nodes."""
    src_of: Dict[int, int] = {}
    sink_of: Dict[int, int] = {}
    for block in netlist.blocks:
        site = placement.block_site.get(block.id)
        if site is None:
            continue
        if block.needs_logic_site:
            src_of[block.id] = rr.clb_source[(site.x, site.y)]
            sink_of[block.id] = rr.clb_sink[(site.x, site.y)]
        else:
            src_of[block.id] = rr.io_source[(site.x, site.y, site.subtile)]
            sink_of[block.id] = rr.io_sink[(site.x, site.y, site.subtile)]
    return src_of, sink_of


def _base_cost_array(rr: RRGraph) -> np.ndarray:
    base_cost = np.empty(rr.num_nodes, dtype=np.float64)
    for t, c in _BASE_COST.items():
        base_cost[rr.node_type == t] = c
    return base_cost


def route(
    netlist: PhysicalNetlist,
    placement: Placement,
    device: Device,
    max_iterations: int = 25,
    pres_fac_init: Optional[float] = None,
    pres_fac_mult: float = 1.8,
    hist_fac: float = 0.4,
    astar_fac: float = 1.1,
    kernel: str = "astar",
    bbox_margin: int = 3,
) -> RoutingResult:
    """Route all nets of a placed netlist on the device's RR graph.

    ``kernel`` selects the wavefront implementation (see module docstring).
    ``fast`` and ``reference`` return identical routes; ``astar`` (the
    default) returns routes of equivalent quality much faster.
    ``bbox_margin`` is the expansion margin of the per-net search bounding
    box used by the ``astar`` kernel.  ``pres_fac_init`` defaults to the
    kernel's preferred schedule: 0.6 for ``fast``/``reference`` (the seed
    trajectory) and 1.0 for ``astar``, whose directed first iteration
    converges faster when initial congestion is priced harder.
    """
    if kernel == "reference":
        return _route_reference(
            netlist, placement, device,
            max_iterations=max_iterations,
            pres_fac_init=0.6 if pres_fac_init is None else pres_fac_init,
            pres_fac_mult=pres_fac_mult, hist_fac=hist_fac, astar_fac=astar_fac,
        )
    if kernel == "astar":
        return _route_astar(
            netlist, placement, device,
            max_iterations=max_iterations,
            pres_fac_init=1.0 if pres_fac_init is None else pres_fac_init,
            pres_fac_mult=pres_fac_mult, hist_fac=hist_fac, astar_fac=astar_fac,
            bbox_margin=bbox_margin,
        )
    if kernel != "fast":
        raise ValueError(f"unknown routing kernel {kernel!r}")
    return _route_fast(
        netlist, placement, device,
        max_iterations=max_iterations,
        pres_fac_init=0.6 if pres_fac_init is None else pres_fac_init,
        pres_fac_mult=pres_fac_mult, hist_fac=hist_fac, astar_fac=astar_fac,
    )


def _route_astar(
    netlist: PhysicalNetlist,
    placement: Placement,
    device: Device,
    max_iterations: int = 25,
    pres_fac_init: float = 1.0,
    pres_fac_mult: float = 1.8,
    hist_fac: float = 0.4,
    astar_fac: float = 1.1,
    bbox_margin: int = 3,
) -> RoutingResult:
    """Directed incremental PathFinder over the pin-filtered search view."""
    rr = device.rr_graph
    num_nodes = rr.num_nodes
    view = rr.search_view()

    base_cost = _base_cost_array(rr)
    cap_arr = rr.node_capacity.astype(np.int32)
    history = np.zeros(num_nodes, dtype=np.float64)

    xs, ys = view.xs, view.ys
    types = view.types
    adj = view.adj_search
    cap = view.capacity
    entries_of = view.entries_of
    occupancy = [0] * num_nodes

    src_of, sink_of = _terminal_nodes(netlist, placement, rr)

    routes: Dict[int, NetRoute] = {}
    net_terms: Dict[int, Tuple[int, List[int]]] = {}
    net_bbox: Dict[int, Tuple[int, int, int, int]] = {}
    for net in netlist.nets:
        source = src_of[net.driver]
        sinks = [sink_of[s] for s in net.sinks]
        net_terms[net.id] = (source, sinks)
        txs = [xs[source]] + [xs[t] for t in sinks]
        tys = [ys[source]] + [ys[t] for t in sinks]
        net_bbox[net.id] = (
            min(txs) - bbox_margin, max(txs) + bbox_margin,
            min(tys) - bbox_margin, max(tys) + bbox_margin,
        )
    full_bounds = (-(1 << 30), 1 << 30, -(1 << 30), 1 << 30)

    visited_gen = [0] * num_nodes
    cost_so_far = [0.0] * num_nodes
    prev_node = [-1] * num_nodes
    generation = 0

    IPIN = RRNodeType.IPIN
    SINK = RRNodeType.SINK
    CHANX = RRNodeType.CHANX
    CHANY = RRNodeType.CHANY
    heappush = heapq.heappush
    heappop = heapq.heappop

    bh: List[float] = []
    cost: List[float] = []
    pres_fac = pres_fac_init
    # Live set of strictly-overused nodes, maintained by bump(): the
    # congestion scans below stay proportional to the overuse, never to the
    # graph, and see occupancy changes from earlier re-routes in the same
    # iteration (which is what makes the negotiation converge).
    over_now: Set[int] = set()

    def bump(n: int, d: int) -> None:
        occupancy[n] += d
        over = occupancy[n] + 1 - cap[n]
        if over > 0:
            cost[n] = bh[n] * (1.0 + pres_fac * over)
            if over > 1:
                over_now.add(n)
            elif d < 0:
                over_now.discard(n)
        else:
            cost[n] = bh[n]
            if d < 0:
                over_now.discard(n)

    def _search(
        target: int, tree: List[int], gen: int,
        bounds: Tuple[int, int, int, int], fac: float,
    ) -> bool:
        """One directed wavefront from the route tree to ``target``."""
        # Bind the hot closure variables as locals: the expansion loop below
        # runs millions of times per route and LOAD_FAST is measurably
        # cheaper than LOAD_DEREF.
        xs_l, ys_l, adj_l, cost_l = xs, ys, adj, cost
        visited_l, csf_l, prev_l = visited_gen, cost_so_far, prev_node
        push, pop = heappush, heappop
        xlo, xhi, ylo, yhi = bounds
        tx, ty = xs_l[target], ys_l[target]
        entry_get = entries_of(target).get
        t_cost = cost_l[target]
        best = float("inf")  # cheapest known completion through the entry map
        heap: List[Tuple[float, float, int]] = []

        def complete(w: int, g_w: float) -> None:
            """Finish target <- ipin <- ``w`` through the cheapest input pin."""
            nonlocal best
            ips = entry_get(w)
            if ips is None:
                return
            ip = ips[0]
            c = cost_l[ip]
            for q in ips[1:]:
                if cost_l[q] < c:
                    ip, c = q, cost_l[q]
            total = g_w + c + t_cost
            if total < best - 1e-12:
                best = total
                visited_l[target] = gen
                csf_l[target] = total
                prev_l[target] = ip
                visited_l[ip] = gen
                csf_l[ip] = g_w + c
                prev_l[ip] = w

        # The route tree is seeded lazily: candidates are sorted by lookahead
        # and enter the heap only once the frontier's f reaches their h --
        # most tree nodes of a big net are far from the target and never get
        # pushed at all.  (A candidate the wavefront reaches before its seed
        # turn is simply re-relaxed to cost 0 when the turn comes.)
        seed_list: List[Tuple[float, int]] = []
        for n in tree:
            tt = types[n]
            if tt == IPIN or tt == SINK:
                continue  # dead ends in the filtered view
            x = xs_l[n]
            y = ys_l[n]
            if x < xlo or x > xhi or y < ylo or y > yhi:
                continue  # outside the search box: its expansions would be too
            dx = x - tx
            dy = y - ty
            if dx < 0:
                dx = -dx
            if dy < 0:
                dy = -dy
            if dx + dy <= 1:
                complete(n, 0.0)
            seed_list.append(((dx + dy) * fac, n))
        seed_list.sort()
        si = 0
        nseeds = len(seed_list)
        while True:
            if si < nseeds and (not heap or seed_list[si][0] <= heap[0][0]):
                f, n = seed_list[si]
                si += 1
                g = 0.0
                visited_l[n] = gen
                csf_l[n] = 0.0
                prev_l[n] = -1
            elif heap:
                f, g, n = pop(heap)
                if g > csf_l[n] + 1e-12:
                    continue  # stale heap entry
            else:
                break
            while True:
                if f >= best:
                    # The lookahead is admissible, so neither this node nor
                    # anything left in the heap can beat the completion
                    # already found: the recorded backtrace is final.
                    return True
                # Expand n; the cheapest improved neighbor is chased inline
                # (no heap round-trip) while it is at least as good as the
                # current heap top -- on straight corridors this removes the
                # push/pop pair for almost every hop.  Pushes are pruned with
                # two bounds: the weighted heap key ``f_m`` and the strictly
                # admissible ``g + dist + pin floor``, which becomes tight as
                # soon as a completion is known and cuts the cross-track tie
                # plateau at its root.
                chase_f = float("inf")
                chase_g = 0.0
                chase_m = -1
                for m in adj_l[n]:
                    new_cost = g + cost_l[m]
                    if visited_l[m] == gen and new_cost >= csf_l[m] - 1e-12:
                        continue  # already reached at least as cheaply
                    x = xs_l[m]
                    if x < xlo or x > xhi:
                        continue
                    y = ys_l[m]
                    if y < ylo or y > yhi:
                        continue
                    dx = x - tx
                    dy = y - ty
                    if dx < 0:
                        dx = -dx
                    if dy < 0:
                        dy = -dy
                    d = dx + dy
                    if d <= 1:
                        # Candidate entry wire: record it, then complete
                        # through it immediately so the bound is primed
                        # long before the wavefront reaches the target.
                        visited_l[m] = gen
                        csf_l[m] = new_cost
                        prev_l[m] = n
                        complete(m, new_cost)
                        f_m = new_cost + d * fac
                        if new_cost + d + _PIN_FLOOR >= best or f_m >= best:
                            continue
                    else:
                        f_m = new_cost + d * fac
                        if f_m >= best or new_cost + d + _PIN_FLOOR >= best:
                            continue  # cannot beat the known completion
                        visited_l[m] = gen
                        csf_l[m] = new_cost
                        prev_l[m] = n
                    if f_m < chase_f:
                        if chase_m >= 0:
                            push(heap, (chase_f, chase_g, chase_m))
                        chase_f, chase_g, chase_m = f_m, new_cost, m
                    else:
                        push(heap, (f_m, new_cost, m))
                if chase_m < 0:
                    break
                if (heap and heap[0][0] < chase_f) or (
                    si < nseeds and seed_list[si][0] < chase_f
                ):
                    # Something cheaper waits in the heap or the seed stream:
                    # defer the candidate to keep the expansion in f-order.
                    push(heap, (chase_f, chase_g, chase_m))
                    break
                f, g, n = chase_f, chase_g, chase_m
        return best < float("inf")

    # Per-net route trees are kept as ordered *connections* -- one
    # ``(target, path, attach)`` triple per sink, where ``path`` lists the
    # nodes this connection added to the tree (target first) and ``attach``
    # is the existing tree node the path grew from.  A duplicate sink (two
    # net pins on one block) is recorded as ``(target, [], target)``.
    net_conns: Dict[int, List[Tuple[int, List[int], int]]] = {}

    def _route_connections(
        net_id: int,
        order: List[int],
        tree: List[int],
        tree_set: Set[int],
        conns: List[Tuple[int, List[int], int]],
    ) -> None:
        nonlocal generation
        escalation = (net_bbox[net_id], full_bounds)
        for target in order:
            if target in tree_set:
                bump(target, 1)
                conns.append((target, [], target))
                continue
            # A too-tight box can starve a congested net of detour room;
            # escalate to the net terminal box and then the whole device
            # before giving up.
            found = False
            for box in escalation:
                generation += 1
                if _search(target, tree, generation, box, astar_fac):
                    found = True
                    break
            if not found:
                raise RuntimeError(
                    f"net {net_id} could not reach its sink; the device is too "
                    "small or the channel width is insufficient even with "
                    "congestion allowed"
                )
            # Backtrace and merge the new path into the route tree.
            path = []
            n = target
            while n not in tree_set:
                path.append(n)
                n = prev_node[n]
            for p in path:
                tree_set.add(p)
                tree.append(p)
                bump(p, 1)
            conns.append((target, path, n))

    def _net_route_of(net_id: int) -> NetRoute:
        nodes = [net_terms[net_id][0]]
        for _, path, _ in net_conns[net_id]:
            nodes.extend(path)
        return NetRoute(net_id, nodes)

    def route_net(net_id: int) -> None:
        source, sinks = net_terms[net_id]
        tree: List[int] = [source]
        tree_set: Set[int] = {source}
        # Route sinks farthest-first (VPR heuristic).
        sx, sy = xs[source], ys[source]
        order = sorted(sinks, key=lambda t: -(abs(xs[t] - sx) + abs(ys[t] - sy)))
        conns: List[Tuple[int, List[int], int]] = []
        net_conns[net_id] = conns
        _route_connections(net_id, order, tree, tree_set, conns)
        routes[net_id] = _net_route_of(net_id)

    def reroute_net(net_id: int) -> None:
        """Rip up and re-route only the congested connections of one net.

        A connection is ripped when its own nodes are overused or when it
        attaches to (or targets) a node owned by a ripped earlier connection;
        connections are stored in route order, so one forward scan closes the
        dependency chain.
        """
        source = net_terms[net_id][0]
        kept: List[Tuple[int, List[int], int]] = []
        ripped: List[Tuple[int, List[int], int]] = []
        ripped_nodes: Set[int] = set()
        for conn in net_conns[net_id]:
            target, path, attach = conn
            usage = path if path else [target]
            if (
                attach in ripped_nodes
                or target in ripped_nodes
                or not over_now.isdisjoint(usage)
            ):
                ripped.append(conn)
                ripped_nodes.update(usage)
            else:
                kept.append(conn)
        if not ripped:
            return
        for target, path, _ in ripped:
            for n in (path if path else [target]):
                bump(n, -1)
        tree = [source]
        tree_set = {source}
        for _, path, _ in kept:
            for n in path:
                tree.append(n)
                tree_set.add(n)
        new_conns: List[Tuple[int, List[int], int]] = []
        _route_connections(
            net_id, [c[0] for c in ripped], tree, tree_set, new_conns
        )
        net_conns[net_id] = kept + new_conns
        routes[net_id] = _net_route_of(net_id)

    iteration = 0
    success = False
    net_ids = [net.id for net in netlist.nets]

    for iteration in range(1, max_iterations + 1):
        # Refresh the congestion cost vector for this iteration's pres_fac
        # and history (occupancy-driven entries are kept current by bump()).
        occ_arr = np.asarray(occupancy, dtype=np.int32)
        base_hist = base_cost + history
        over_arr = occ_arr + 1 - cap_arr
        cost_arr = np.where(over_arr > 0, base_hist * (1.0 + pres_fac * over_arr), base_hist)
        bh = base_hist.tolist()
        cost = cost_arr.tolist()

        if iteration == 1:
            for nid in net_ids:
                route_net(nid)
        else:
            # Incremental re-route: only nets that occupy congested nodes,
            # and within them only the congested connections.  over_now is
            # live, so a net already healed by an earlier re-route in this
            # iteration is skipped and one newly congested is picked up.
            for nid in net_ids:
                if not over_now.isdisjoint(routes[nid].nodes):
                    reroute_net(nid)

        if not over_now:
            success = True
            break
        for n in over_now:
            history[n] += hist_fac * (occupancy[n] - cap[n])
        pres_fac *= pres_fac_mult

    occ_arr = np.asarray(occupancy, dtype=np.int32)
    return _assemble_result(rr, routes, occ_arr, cap_arr, success, iteration)


def _route_fast(
    netlist: PhysicalNetlist,
    placement: Placement,
    device: Device,
    max_iterations: int = 25,
    pres_fac_init: float = 0.6,
    pres_fac_mult: float = 1.8,
    hist_fac: float = 0.4,
    astar_fac: float = 1.1,
) -> RoutingResult:
    """PR 1 kernel: congestion cost vector, unpruned wavefront (baseline)."""
    rr = device.rr_graph
    num_nodes = rr.num_nodes

    base_cost = _base_cost_array(rr)
    cap_arr = rr.node_capacity.astype(np.int32)
    history = np.zeros(num_nodes, dtype=np.float64)

    # Flat Python mirrors of the RR-graph arrays for the search inner loop.
    cap = cap_arr.tolist()
    ntype = rr.node_type.tolist()
    xs = rr.node_x.tolist()
    ys = rr.node_y.tolist()
    ptr = rr.edge_ptr.tolist()
    dst = rr.edge_dst.tolist()
    adj = [dst[ptr[i]: ptr[i + 1]] for i in range(num_nodes)]
    occupancy = [0] * num_nodes

    src_of, sink_of = _terminal_nodes(netlist, placement, rr)

    routes: Dict[int, NetRoute] = {}
    net_terms: Dict[int, Tuple[int, List[int]]] = {}
    for net in netlist.nets:
        net_terms[net.id] = (src_of[net.driver], [sink_of[s] for s in net.sinks])

    # Search bookkeeping with generation stamps (avoids clearing big arrays).
    visited_gen = [0] * num_nodes
    cost_so_far = [0.0] * num_nodes
    prev_node = [-1] * num_nodes
    generation = 0

    SINK = RRNodeType.SINK
    heappush = heapq.heappush
    heappop = heapq.heappop

    # Per-iteration congestion costs: cost[n] = (base + history)[n] * present.
    # Refreshed vectorized at iteration start, entry-wise on occupancy change.
    bh: List[float] = []
    cost: List[float] = []
    pres_fac = pres_fac_init

    def bump(n: int, d: int) -> None:
        occupancy[n] += d
        over = occupancy[n] + 1 - cap[n]
        cost[n] = bh[n] * (1.0 + pres_fac * over) if over > 0 else bh[n]

    def route_net(net_id: int) -> NetRoute:
        nonlocal generation
        source, sinks = net_terms[net_id]
        tree: List[int] = [source]
        tree_set: Set[int] = {source}
        # Route sinks farthest-first (VPR heuristic).
        sx, sy = xs[source], ys[source]
        order = sorted(sinks, key=lambda t: -(abs(xs[t] - sx) + abs(ys[t] - sy)))
        for target in order:
            if target in tree_set:
                bump(target, 1)
                continue
            generation += 1
            gen = generation
            tx, ty = xs[target], ys[target]
            heap: List[Tuple[float, float, int]] = []
            for n in tree:
                h = (abs(xs[n] - tx) + abs(ys[n] - ty)) * astar_fac
                visited_gen[n] = gen
                cost_so_far[n] = 0.0
                prev_node[n] = -1
                heappush(heap, (h, 0.0, n))
            found = False
            while heap:
                _, g, n = heappop(heap)
                if g > cost_so_far[n] + 1e-12:
                    continue  # stale heap entry
                if n == target:
                    found = True
                    break
                for m in adj[n]:
                    if ntype[m] == SINK and m != target:
                        continue
                    new_cost = g + cost[m]
                    if visited_gen[m] != gen or new_cost < cost_so_far[m] - 1e-12:
                        visited_gen[m] = gen
                        cost_so_far[m] = new_cost
                        prev_node[m] = n
                        h = (abs(xs[m] - tx) + abs(ys[m] - ty)) * astar_fac
                        heappush(heap, (new_cost + h, new_cost, m))
            if not found:
                raise RuntimeError(
                    f"net {net_id} could not reach its sink; the device is too small "
                    "or the channel width is insufficient even with congestion allowed"
                )
            # Backtrace and merge the new path into the route tree.
            path = []
            n = target
            while n != -1 and n not in tree_set:
                path.append(n)
                n = prev_node[n]
            for n in path:
                tree_set.add(n)
                tree.append(n)
                bump(n, 1)
        return NetRoute(net_id, tree)

    def rip_up(net_route: NetRoute) -> None:
        source = net_terms[net_route.net_id][0]
        for n in net_route.nodes:
            if n != source:
                bump(n, -1)

    iteration = 0
    success = False
    net_ids = [net.id for net in netlist.nets]

    for iteration in range(1, max_iterations + 1):
        # Refresh the congestion cost vector for this iteration's pres_fac
        # and history (occupancy-driven entries are kept current by bump()).
        occ_arr = np.asarray(occupancy, dtype=np.int32)
        base_hist = base_cost + history
        over_arr = occ_arr + 1 - cap_arr
        cost_arr = np.where(over_arr > 0, base_hist * (1.0 + pres_fac * over_arr), base_hist)
        bh = base_hist.tolist()
        cost = cost_arr.tolist()

        if iteration == 1:
            targets = net_ids
        else:
            # Re-route only nets that currently use overused nodes.
            targets = [
                nid
                for nid in net_ids
                if any(occupancy[n] > cap[n] for n in routes[nid].nodes)
            ]
        for nid in targets:
            if nid in routes:
                rip_up(routes[nid])
            routes[nid] = route_net(nid)

        occ_arr = np.asarray(occupancy, dtype=np.int32)
        over_nodes = int(np.count_nonzero(occ_arr > cap_arr))
        if over_nodes == 0:
            success = True
            break
        history += hist_fac * np.maximum(occ_arr - cap_arr, 0)
        pres_fac *= pres_fac_mult

    occ_arr = np.asarray(occupancy, dtype=np.int32)
    return _assemble_result(rr, routes, occ_arr, cap_arr, success, iteration)


def _assemble_result(
    rr: RRGraph,
    routes: Dict[int, NetRoute],
    occupancy: np.ndarray,
    capacity: np.ndarray,
    success: bool,
    iteration: int,
) -> RoutingResult:
    wire_mask = (rr.node_type == RRNodeType.CHANX) | (rr.node_type == RRNodeType.CHANY)
    wirelength = 0
    for r in routes.values():
        wirelength += sum(1 for n in r.nodes if wire_mask[n])
    max_chan_occ = int(occupancy[wire_mask].max()) if wire_mask.any() else 0
    return RoutingResult(
        routes=routes,
        success=success,
        iterations=iteration,
        wirelength=wirelength,
        overused_nodes=int(np.count_nonzero(occupancy > capacity)),
        max_channel_occupancy=max_chan_occ,
    )


def _route_reference(
    netlist: PhysicalNetlist,
    placement: Placement,
    device: Device,
    max_iterations: int = 25,
    pres_fac_init: float = 0.6,
    pres_fac_mult: float = 1.8,
    hist_fac: float = 0.4,
    astar_fac: float = 1.1,
) -> RoutingResult:
    """Original router: per-edge ``node_cost()`` calls (benchmark baseline)."""
    rr = device.rr_graph
    num_nodes = rr.num_nodes

    base_cost = _base_cost_array(rr)
    capacity = rr.node_capacity.astype(np.int32)
    occupancy = np.zeros(num_nodes, dtype=np.int32)
    history = np.zeros(num_nodes, dtype=np.float64)

    node_x = rr.node_x.astype(np.int32)
    node_y = rr.node_y.astype(np.int32)
    edge_ptr = rr.edge_ptr
    edge_dst = rr.edge_dst

    src_of, sink_of = _terminal_nodes(netlist, placement, rr)

    routes: Dict[int, NetRoute] = {}
    net_terms: Dict[int, Tuple[int, List[int]]] = {}
    for net in netlist.nets:
        net_terms[net.id] = (src_of[net.driver], [sink_of[s] for s in net.sinks])

    visited_gen = np.zeros(num_nodes, dtype=np.int64)
    cost_so_far = np.zeros(num_nodes, dtype=np.float64)
    prev_node = np.full(num_nodes, -1, dtype=np.int64)
    generation = 0

    def node_cost(n: int, pres_fac: float) -> float:
        over = occupancy[n] + 1 - capacity[n]
        pres = 1.0 + pres_fac * over if over > 0 else 1.0
        return (base_cost[n] + history[n]) * pres

    def route_net(net_id: int, pres_fac: float) -> NetRoute:
        nonlocal generation
        source, sinks = net_terms[net_id]
        tree: List[int] = [source]
        tree_set: Set[int] = {source}
        sx, sy = int(node_x[source]), int(node_y[source])
        order = sorted(
            sinks,
            key=lambda t: -(abs(int(node_x[t]) - sx) + abs(int(node_y[t]) - sy)),
        )
        for target in order:
            if target in tree_set:
                occupancy[target] += 1
                continue
            generation += 1
            gen = generation
            tx, ty = int(node_x[target]), int(node_y[target])
            heap: List[Tuple[float, float, int]] = []
            for n in tree:
                h = (abs(int(node_x[n]) - tx) + abs(int(node_y[n]) - ty)) * astar_fac
                visited_gen[n] = gen
                cost_so_far[n] = 0.0
                prev_node[n] = -1
                heapq.heappush(heap, (h, 0.0, n))
            found = False
            while heap:
                _, g, n = heapq.heappop(heap)
                if g > cost_so_far[n] + 1e-12:
                    continue  # stale heap entry
                if n == target:
                    found = True
                    break
                for m in edge_dst[edge_ptr[n] : edge_ptr[n + 1]]:
                    m = int(m)
                    ntype = rr.node_type[m]
                    if ntype == RRNodeType.SINK and m != target:
                        continue
                    new_cost = g + node_cost(m, pres_fac)
                    if visited_gen[m] != gen or new_cost < cost_so_far[m] - 1e-12:
                        visited_gen[m] = gen
                        cost_so_far[m] = new_cost
                        prev_node[m] = n
                        h = (abs(int(node_x[m]) - tx) + abs(int(node_y[m]) - ty)) * astar_fac
                        heapq.heappush(heap, (new_cost + h, new_cost, m))
            if not found:
                raise RuntimeError(
                    f"net {net_id} could not reach its sink; the device is too small "
                    "or the channel width is insufficient even with congestion allowed"
                )
            path = []
            n = target
            while n != -1 and n not in tree_set:
                path.append(n)
                n = int(prev_node[n])
            for n in path:
                tree_set.add(n)
                tree.append(n)
                occupancy[n] += 1
        return NetRoute(net_id, tree)

    def rip_up(net_route: NetRoute) -> None:
        for n in net_route.nodes:
            if n != net_terms[net_route.net_id][0]:
                occupancy[n] -= 1

    pres_fac = pres_fac_init
    iteration = 0
    success = False
    net_ids = [net.id for net in netlist.nets]

    for iteration in range(1, max_iterations + 1):
        if iteration == 1:
            targets = net_ids
        else:
            over = occupancy > capacity
            targets = [
                nid
                for nid in net_ids
                if any(over[n] for n in routes[nid].nodes)
            ]
        for nid in targets:
            if nid in routes:
                rip_up(routes[nid])
            routes[nid] = route_net(nid, pres_fac)

        over_nodes = int(np.count_nonzero(occupancy > capacity))
        if over_nodes == 0:
            success = True
            break
        history += hist_fac * np.maximum(occupancy - capacity, 0)
        pres_fac *= pres_fac_mult

    return _assemble_result(rr, routes, occupancy, capacity, success, iteration)
