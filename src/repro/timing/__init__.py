"""Static timing analysis over placed-and-routed physical netlists.

The subsystem has three layers:

* :mod:`repro.timing.graph` -- the levelized timing graph: one timing node
  per physical block, one timing edge per routed connection (net driver ->
  net sink), all stored as flat NumPy arrays grouped by topological level so
  the arrival/required scans run as a handful of vector operations per
  level.
* :mod:`repro.timing.delays` -- connection-delay extraction: exact per-sink
  delays (and wire/switch/pin element counts) walked out of the router's
  route trees against the architecture's per-resource delay model
  (:func:`repro.fpga.routing_graph.rr_delay_ns`), with placement-distance
  and structural estimates as pre-route fallbacks.
* :mod:`repro.timing.sta` -- the engine: arrival / required / slack /
  per-connection criticality, full critical-path extraction with a
  per-element (LUT / wire / switch / pin) breakdown, and the
  :class:`~repro.timing.sta.CriticalityTracker` that feeds criticalities
  back into the timing-driven router objective each PathFinder iteration.

:func:`analyze` is the one-call entry point used by the PAR flow and the
legacy :func:`repro.par.timing.analyze_timing` wrapper.
"""

from .delays import (
    estimated_edge_delays,
    estimated_edge_delays_from_coords,
    routed_edge_delays,
    structural_edge_delays,
)
from .graph import TimingGraph, build_timing_graph
from .sta import (
    CriticalityTracker,
    CriticalPathElement,
    TimingAnalysis,
    analyze,
    net_criticality_from_placement,
    scan_edge_criticality,
    structural_net_criticality,
)

__all__ = [
    "TimingGraph",
    "build_timing_graph",
    "routed_edge_delays",
    "estimated_edge_delays",
    "estimated_edge_delays_from_coords",
    "structural_edge_delays",
    "TimingAnalysis",
    "CriticalPathElement",
    "CriticalityTracker",
    "analyze",
    "scan_edge_criticality",
    "structural_net_criticality",
    "net_criticality_from_placement",
]
