"""Levelized timing graph of a physical netlist.

The timing graph is the combinational view the STA engine scans: one timing
node per placeable block of the :class:`~repro.par.netlist.PhysicalNetlist`
(LUTs carry their intrinsic delay, IO and flip-flop blocks are free
endpoints), and one timing edge per *connection* -- a (net driver, net sink)
pair -- whose delay is filled in from the routed route trees (or from a
placement/structural estimate before routing exists).

Everything is stored as flat NumPy arrays sorted by topological level:
``edge_order_fwd`` groups edges by the level of their sink so the arrival
scan processes one level per vector operation, ``edge_order_bwd`` groups by
the level of their source for the required scan.  Graph topology is fixed
per netlist; only the edge delays change as the router negotiates, which is
what makes the per-PathFinder-iteration criticality update cheap (see
:class:`repro.timing.sta.CriticalityTracker`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..par.netlist import PhysicalNetlist

__all__ = ["TimingGraph", "build_timing_graph"]


@dataclass
class TimingGraph:
    """Flat levelized timing graph over the blocks of one netlist."""

    netlist: PhysicalNetlist
    num_nodes: int
    node_delay: np.ndarray    #: float64 intrinsic delay per block (LUT delay)
    node_logic: np.ndarray    #: bool, True where the block counts a LUT level
    node_level: np.ndarray    #: int32 topological level (longest path, edges)
    edge_src: np.ndarray      #: int32 driver block per connection
    edge_dst: np.ndarray      #: int32 sink block per connection
    edge_net: np.ndarray      #: int32 net id per connection
    #: edge indices grouped by sink level (ascending), with the per-level
    #: slice boundaries; the forward arrival scan walks these groups.
    edge_order_fwd: np.ndarray
    fwd_bounds: List[Tuple[int, int, int]]  #: (level, lo, hi) into edge_order_fwd
    #: edge indices grouped by source level (descending) for the required scan.
    edge_order_bwd: np.ndarray
    bwd_bounds: List[Tuple[int, int, int]]
    #: blocks whose arrival time anchors the analysis: primary-output IO
    #: blocks when the netlist has any, else every block without fanout.
    sink_nodes: np.ndarray
    #: blocks of each level, for adding node delays level by level.
    level_nodes: List[np.ndarray]

    @property
    def num_edges(self) -> int:
        return len(self.edge_src)


def build_timing_graph(netlist: PhysicalNetlist, lut_delay_ns: float) -> TimingGraph:
    """Build the levelized timing graph of ``netlist``.

    ``lut_delay_ns`` is the intrinsic delay of a logic block (the
    architecture's LUT delay); IO and flip-flop blocks contribute none.  The
    logic level of a block (``node_logic`` summed along a path) reproduces
    the LUT logic depth of the mapped network the netlist was lowered from:
    TCONs were absorbed into nets during lowering, so every remaining
    combinational hop is exactly one LUT.
    """
    num_nodes = len(netlist.blocks)
    node_delay = np.zeros(num_nodes, dtype=np.float64)
    node_logic = np.zeros(num_nodes, dtype=bool)
    for b in netlist.blocks:
        if b.kind == "clb":
            node_delay[b.id] = lut_delay_ns
            node_logic[b.id] = True

    srcs: List[int] = []
    dsts: List[int] = []
    nets: List[int] = []
    for net in netlist.nets:
        for sink in net.sinks:
            srcs.append(net.driver)
            dsts.append(sink)
            nets.append(net.id)
    edge_src = np.asarray(srcs, dtype=np.int32)
    edge_dst = np.asarray(dsts, dtype=np.int32)
    edge_net = np.asarray(nets, dtype=np.int32)
    num_edges = len(edge_src)

    # Longest-path levelization (Kahn's algorithm over the connection DAG).
    level = np.zeros(num_nodes, dtype=np.int32)
    indeg = np.bincount(edge_dst, minlength=num_nodes).astype(np.int64)
    fanout: List[List[int]] = [[] for _ in range(num_nodes)]
    for i in range(num_edges):
        fanout[edge_src[i]].append(i)
    frontier = [b for b in range(num_nodes) if indeg[b] == 0]
    seen = 0
    while frontier:
        nxt: List[int] = []
        for u in frontier:
            seen += 1
            lu = level[u]
            for ei in fanout[u]:
                v = int(edge_dst[ei])
                if lu + 1 > level[v]:
                    level[v] = lu + 1
                indeg[v] -= 1
                if indeg[v] == 0:
                    nxt.append(v)
        frontier = nxt
    if seen != num_nodes:
        raise ValueError("physical netlist contains a combinational cycle")

    # Group edges by sink level (forward) and by source level (backward).
    edge_order_fwd = np.argsort(level[edge_dst], kind="stable").astype(np.int64)
    fwd_bounds: List[Tuple[int, int, int]] = []
    if num_edges:
        dst_levels = level[edge_dst][edge_order_fwd]
        starts = np.flatnonzero(np.diff(dst_levels, prepend=dst_levels[0] - 1))
        ends = np.append(starts[1:], num_edges)
        fwd_bounds = [(int(dst_levels[s]), int(s), int(e)) for s, e in zip(starts, ends)]
    edge_order_bwd = np.argsort(-level[edge_src], kind="stable").astype(np.int64)
    bwd_bounds: List[Tuple[int, int, int]] = []
    if num_edges:
        src_levels = level[edge_src][edge_order_bwd]
        starts = np.flatnonzero(np.diff(src_levels, prepend=src_levels[0] + 1))
        ends = np.append(starts[1:], num_edges)
        bwd_bounds = [(int(src_levels[s]), int(s), int(e)) for s, e in zip(starts, ends)]

    # Arrival anchors: primary-output IO blocks (IO blocks that sink a net).
    # Dead logic hanging off no output does not define the critical path,
    # exactly as in the mapped network's depth over its outputs.
    has_fanout = np.zeros(num_nodes, dtype=bool)
    has_fanout[edge_src] = True
    is_io = np.asarray([b.kind == "io" for b in netlist.blocks], dtype=bool)
    has_fanin = np.zeros(num_nodes, dtype=bool)
    has_fanin[edge_dst] = True
    sink_nodes = np.flatnonzero(is_io & has_fanin)
    if sink_nodes.size == 0:
        sink_nodes = np.flatnonzero(~has_fanout)

    max_level = int(level.max()) if num_nodes else 0
    level_nodes = [np.flatnonzero(level == lv).astype(np.int64) for lv in range(max_level + 1)]

    return TimingGraph(
        netlist=netlist,
        num_nodes=num_nodes,
        node_delay=node_delay,
        node_logic=node_logic,
        node_level=level,
        edge_src=edge_src,
        edge_dst=edge_dst,
        edge_net=edge_net,
        edge_order_fwd=edge_order_fwd,
        fwd_bounds=fwd_bounds,
        edge_order_bwd=edge_order_bwd,
        bwd_bounds=bwd_bounds,
        sink_nodes=sink_nodes,
        level_nodes=level_nodes,
    )
