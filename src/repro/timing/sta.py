"""Vectorized STA engine: arrival / required / slack / criticality.

The engine runs two levelized NumPy scans over a :class:`TimingGraph`:

* **forward** -- per topological level, arrival times fold over the incoming
  connections with ``np.maximum.at`` and then add the level's intrinsic
  block delays;
* **backward** -- required times fold over the outgoing connections with
  ``np.minimum.at``, anchored at the critical-path delay on every
  primary-output block.

Per-connection slack and VPR-style criticality ``1 - slack / Dmax`` fall out
of the same arrays, and the critical path is extracted by walking the
arrival argmax backwards, itemized per element (LUT / wire / switch / pin)
from the route-tree walk of :mod:`repro.timing.delays`.

Invariants:

* **Conservation.**  Per-connection ``slack = required(sink) -
  arrival(source) - delay`` and the critical path has slack exactly zero;
  the per-element breakdown of the extracted path sums *exactly* to
  ``critical_path_ns`` (asserted by the reconciliation tests).
* **Depth compatibility.**  The analysis's ``logic_depth`` equals the
  mapped network's ``depth()`` -- STA reads the same DAG the mapper
  produced, and ``check_quality.py`` fails the benchmark when they
  diverge.
* **Flat == dict.**  :meth:`CriticalityTracker.update_flat` (the dense
  ``conn_crit`` vector indexed by connection id) is bit-identical to the
  dict-returning :meth:`CriticalityTracker.update`; the dict path is kept
  as the equivalence baseline, not as a second behavior.
* **Criticalities are bounded.**  Every criticality lies in ``[0, 1]``;
  connections absent from the route set score ``0.0``, so a partially
  routed iteration can never over-prioritize missing nets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..fpga.device import Device
from ..obs import metrics as obs_metrics
from ..obs.trace import span
from ..par.netlist import PhysicalNetlist
from ..par.placement import Placement
from .delays import (
    estimated_edge_delays,
    routed_edge_delays,
    routed_wirecount_edge_delays,
    sink_rr_array,
    sink_rr_of_blocks,
    structural_edge_delays,
)
from .graph import TimingGraph, build_timing_graph

__all__ = [
    "CriticalPathElement",
    "TimingAnalysis",
    "CriticalityTracker",
    "analyze",
    "scan_edge_criticality",
    "structural_net_criticality",
    "net_criticality_from_placement",
]

_EPS = 1e-12


@dataclass
class CriticalPathElement:
    """One element of the critical-path breakdown."""

    kind: str        #: "lut", "wire", "switch" or "pin"
    name: str        #: block or net name the element belongs to
    count: int       #: number of identical elements folded into this entry
    delay_ns: float  #: total delay contributed (count * unit delay)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON reports."""
        return {
            "kind": self.kind,
            "name": self.name,
            "count": self.count,
            "delay_ns": self.delay_ns,
        }


@dataclass
class TimingAnalysis:
    """Full STA result over one placed (and usually routed) netlist."""

    graph: TimingGraph
    arrival: np.ndarray          #: per-block arrival time at the block output
    required: np.ndarray         #: per-block required time at the block output
    slack: np.ndarray            #: required - arrival
    edge_delay: np.ndarray       #: per-connection delay used by the scans
    edge_slack: np.ndarray       #: per-connection slack
    edge_criticality: np.ndarray  #: 1 - slack/Dmax, clipped to [0, 1]
    critical_path_ns: float
    logic_depth: int
    critical_path: List[CriticalPathElement] = field(default_factory=list)

    def connection_criticality(self) -> Dict[Tuple[int, int], float]:
        """Criticality per ``(net_id, sink_block)`` connection."""
        g = self.graph
        return {
            (int(g.edge_net[i]), int(g.edge_dst[i])): float(self.edge_criticality[i])
            for i in range(g.num_edges)
        }

    def net_criticality(self) -> Dict[int, float]:
        """Per-net criticality: the maximum over the net's connections."""
        out: Dict[int, float] = {}
        g = self.graph
        for i in range(g.num_edges):
            nid = int(g.edge_net[i])
            c = float(self.edge_criticality[i])
            if c > out.get(nid, -1.0):
                out[nid] = c
        return out

    def summary(self) -> Dict[str, float]:
        """Headline numbers: critical path, depth, worst slack, mean criticality."""
        worst_slack = 0.0
        if self.graph.sink_nodes.size:
            worst_slack = float(self.slack[self.graph.sink_nodes].min())
        return {
            "critical_path_ns": self.critical_path_ns,
            "logic_depth": self.logic_depth,
            "worst_slack_ns": worst_slack,
        }


def _scan(graph: TimingGraph, edge_delay: np.ndarray):
    """Forward/backward levelized scans; returns the flat STA arrays."""
    n = graph.num_nodes
    arrival = np.zeros(n, dtype=np.float64)
    depth = np.zeros(n, dtype=np.int64)
    src, dst = graph.edge_src, graph.edge_dst
    logic = graph.node_logic.astype(np.int64)

    # One interleaved pass per level: fold the level's incoming connections
    # (their sources sit at strictly lower levels, so those arrivals are
    # final), then add the level's intrinsic block delays.  Levels with no
    # incoming edges -- sources -- only get their intrinsic delay.
    bounds_by_level = {lv: (lo, hi) for lv, lo, hi in graph.fwd_bounds}
    for lv, nodes in enumerate(graph.level_nodes):
        b = bounds_by_level.get(lv)
        if b is not None:
            lo, hi = b
            ei = graph.edge_order_fwd[lo:hi]
            np.maximum.at(arrival, dst[ei], arrival[src[ei]] + edge_delay[ei])
            np.maximum.at(depth, dst[ei], depth[src[ei]])
        arrival[nodes] += graph.node_delay[nodes]
        depth[nodes] += logic[nodes]

    sinks = graph.sink_nodes
    dmax = float(arrival[sinks].max()) if sinks.size else 0.0
    logic_depth = int(depth[sinks].max()) if sinks.size else 0

    required = np.full(n, np.inf)
    required[sinks] = dmax
    for lv, lo, hi in graph.bwd_bounds:
        ei = graph.edge_order_bwd[lo:hi]
        np.minimum.at(
            required,
            src[ei],
            required[dst[ei]] - graph.node_delay[dst[ei]] - edge_delay[ei],
        )
    slack = required - arrival
    edge_slack = (
        required[dst] - graph.node_delay[dst] - edge_delay - arrival[src]
        if graph.num_edges
        else np.zeros(0)
    )
    if dmax > _EPS:
        crit = np.clip(1.0 - edge_slack / dmax, 0.0, 1.0)
    else:
        crit = np.zeros(graph.num_edges, dtype=np.float64)
    # Connections hanging off dead logic have +inf required time; their
    # criticality is zero by the clip above (slack +inf), and their node
    # slack stays +inf, which summary()/tests must tolerate.
    return arrival, required, slack, edge_slack, crit, dmax, logic_depth


def _extract_critical_path(
    graph: TimingGraph,
    arrival: np.ndarray,
    edge_delay: np.ndarray,
    edge_wires: Optional[np.ndarray],
    edge_pins: Optional[np.ndarray],
    arch,
) -> List[CriticalPathElement]:
    """Walk the arrival argmax backwards, itemizing per element."""
    sinks = graph.sink_nodes
    if sinks.size == 0 or graph.num_edges == 0:
        return []
    end = int(sinks[np.argmax(arrival[sinks])])

    # Incoming edges per block, found by scanning once.
    fanin: Dict[int, List[int]] = {}
    for i in range(graph.num_edges):
        fanin.setdefault(int(graph.edge_dst[i]), []).append(i)

    model = arch.delay_model()
    netlist = graph.netlist
    path_edges: List[int] = []
    node = end
    while True:
        cands = fanin.get(node)
        if not cands:
            break
        best = max(cands, key=lambda i: arrival[graph.edge_src[i]] + edge_delay[i])
        path_edges.append(best)
        node = int(graph.edge_src[best])
    path_edges.reverse()

    elements: List[CriticalPathElement] = []
    start = int(graph.edge_src[path_edges[0]]) if path_edges else end

    def lut_element(block: int) -> None:
        """Append ``block``'s intrinsic-delay element to the breakdown."""
        b = netlist.blocks[block]
        if graph.node_logic[block]:
            elements.append(CriticalPathElement("lut", b.name, 1, model["lut"]))

    lut_element(start)
    for i in path_edges:
        net_name = netlist.nets[int(graph.edge_net[i])].name
        if edge_wires is not None:
            w = int(edge_wires[i])
            p = int(edge_pins[i])
            wire_d = w * model["wire"]
            switch_d = w * model["switch"]
            pin_d = p * model["pin"]
            # Keep the breakdown exact even when the edge delay came from an
            # estimate whose element split differs: fold any residue into
            # the wire entry.
            residue = float(edge_delay[i]) - (wire_d + switch_d + pin_d)
            if w:
                elements.append(CriticalPathElement("wire", net_name, w, wire_d + residue))
                elements.append(CriticalPathElement("switch", net_name, w, switch_d))
            elif abs(residue) > _EPS:
                elements.append(CriticalPathElement("wire", net_name, 0, residue))
            if p:
                elements.append(CriticalPathElement("pin", net_name, p, pin_d))
        else:
            elements.append(CriticalPathElement("wire", net_name, 1, float(edge_delay[i])))
        lut_element(int(graph.edge_dst[i]))
    return elements


def scan_edge_criticality(graph: TimingGraph, edge_delay: np.ndarray) -> Tuple[float, np.ndarray]:
    """Run the two STA scans, return ``(critical_path_ns, edge_criticality)``.

    The thin public face of :func:`_scan` for callers that only need the
    criticality axis -- the incremental-STA placer re-times through this on
    every re-weighting step.
    """
    *_, crit, dmax, _depth = _scan(graph, edge_delay)
    return dmax, crit


def analyze(
    netlist: PhysicalNetlist,
    routing,
    device: Device,
    placement: Optional[Placement] = None,
) -> TimingAnalysis:
    """Run the STA engine over one placed-and-routed netlist.

    ``routing`` is a :class:`~repro.par.routing.RoutingResult` (or anything
    with a ``routes`` dict), or ``None`` for a pre-route analysis.  With a
    ``placement`` but no routing, connection delays are Manhattan-distance
    estimates; with routing but no placement, the seed implementation's
    per-net average-wires-per-sink model applies (exact per-sink tree walks
    need the block -> SINK mapping only a placement provides); with
    neither, every connection costs one wire hop -- the structural estimate
    whose criticalities drive the timing-aware placer.
    """
    with span("timing.sta.analyze", nets=len(netlist.nets)):
        arch = device.arch
        graph = build_timing_graph(netlist, arch.lut_delay_ns)
        edge_wires = edge_pins = None
        routes = getattr(routing, "routes", None) if routing is not None else None
        forest = getattr(routing, "forest", None) if routing is not None else None
        if routes is not None and placement is not None:
            edge_delay, edge_wires, edge_pins = routed_edge_delays(
                graph, routes, placement, device, forest=forest
            )
        elif routes is not None:
            edge_delay = routed_wirecount_edge_delays(graph, routes, device)
        elif placement is not None:
            edge_delay, edge_wires, edge_pins = estimated_edge_delays(graph, placement, arch)
        else:
            edge_delay = structural_edge_delays(graph, arch)
        arrival, required, slack, edge_slack, crit, dmax, depth = _scan(graph, edge_delay)
        path = _extract_critical_path(graph, arrival, edge_delay, edge_wires, edge_pins, arch)
        obs_metrics.add("sta.analyze_calls")
    return TimingAnalysis(
        graph=graph,
        arrival=arrival,
        required=required,
        slack=slack,
        edge_delay=edge_delay,
        edge_slack=edge_slack,
        edge_criticality=crit,
        critical_path_ns=dmax,
        logic_depth=depth,
        critical_path=path,
    )


def _fold_edge_crit_to_nets(graph: TimingGraph, crit: np.ndarray) -> List[float]:
    out = [0.0] * len(graph.netlist.nets)
    for i in range(graph.num_edges):
        nid = int(graph.edge_net[i])
        c = float(crit[i])
        if c > out[nid]:
            out[nid] = c
    return out


def structural_net_criticality(netlist: PhysicalNetlist, arch) -> List[float]:
    """Per-net criticality of the *unplaced* netlist (uniform wire delays).

    This is what the timing-driven flow weights the placer with: before any
    placement exists, a connection's criticality is purely structural --
    how close the deepest path through it comes to the overall logic depth.
    Returns one ``[0, 1]`` value per net (the max over its connections).
    """
    graph = build_timing_graph(netlist, arch.lut_delay_ns)
    delays = structural_edge_delays(graph, arch)
    *_, crit, _dmax, _depth = _scan(graph, delays)
    return _fold_edge_crit_to_nets(graph, crit)


def net_criticality_from_placement(
    graph: TimingGraph, placement: Placement, arch, exponent: float = 1.0
) -> Tuple[float, List[float]]:
    """Estimated critical path and per-net criticalities of one placement.

    Distance-based delay estimates (no routing); returns ``(critical_path_ns,
    net_crits)``.  The timing-driven flow uses the estimate both to re-weight
    the next annealing pass and to pick the best placement candidate before
    spending a route on it.  ``exponent`` sharpens the criticalities.
    """
    delays = estimated_edge_delays(graph, placement, arch)[0]
    *_, crit, dmax, _depth = _scan(graph, delays)
    if exponent != 1.0:
        crit = crit**exponent
    return dmax, _fold_edge_crit_to_nets(graph, crit)


class CriticalityTracker:
    """Incremental criticality updates for the timing-driven router.

    Built once per :func:`repro.par.routing.route` call: the timing graph,
    the block -> SINK-RR mapping, and the flat *connection index* are fixed,
    so each PathFinder iteration's update only re-times the route trees and
    re-runs the two levelized scans.  Criticalities are sharpened by
    ``exponent`` and capped at ``max_criticality`` so every connection keeps
    paying a slice of the congestion cost (a fully criticality-blind
    connection would never negotiate).

    The hot path is the flat API: every unique ``(net, sink_rr)`` pair gets
    a dense connection id (``conn_index``), :meth:`update_flat` re-times a
    :class:`~repro.par.forest.RouteForest` with pure NumPy gathers and
    refreshes :attr:`conn_crit` -- one float64 per connection id, updated in
    place -- which the routing kernels index directly instead of probing a
    ``Dict[(net, sink), float]`` per connection.  The dict-returning
    :meth:`initial` / :meth:`update` remain as the legacy (PR 4) path and
    the equivalence baseline.
    """

    def __init__(
        self,
        netlist: PhysicalNetlist,
        placement: Placement,
        device: Device,
        max_criticality: float = 0.95,
        exponent: float = 1.0,
    ) -> None:
        self.netlist = netlist
        self.placement = placement
        self.device = device
        self.max_criticality = max_criticality
        self.exponent = exponent
        arch = device.arch
        self.graph = build_timing_graph(netlist, arch.lut_delay_ns)
        self._sink_rr = sink_rr_of_blocks(netlist, placement, device)
        self._estimate = estimated_edge_delays(self.graph, placement, arch)[0]
        self.critical_path_ns = 0.0
        self.updates = 0

        # Flat connection index: dense ids over the unique (net, sink_rr)
        # pairs of the timing edges, plus the edge -> connection map the
        # folds and joins below gather through.
        g = self.graph
        rr = device.rr_graph
        self._num_rr = rr.num_nodes
        self._sink_arr = sink_rr_array(g, self._sink_rr)
        edge_sink = self._sink_arr[g.edge_dst] if g.num_edges else np.zeros(0, dtype=np.int64)
        from ..par.forest import join_sorted

        valid = edge_sink >= 0
        ekey = g.edge_net.astype(np.int64) * self._num_rr + edge_sink
        self._conn_keys = np.unique(ekey[valid])  # sorted: defines cid order
        self.num_connections = int(self._conn_keys.size)
        pos, matched = join_sorted(self._conn_keys, ekey)
        self._edge_conn = np.where(valid & matched, pos, -1).astype(np.int64)
        #: ``(net_id, sink_rr) -> connection id`` -- the routing kernels
        #: resolve each net sink once at setup, then index
        #: :attr:`conn_crit` by id every iteration.
        self.conn_index: Dict[Tuple[int, int], int] = {
            (int(k // self._num_rr), int(k % self._num_rr)): cid
            for cid, k in enumerate(self._conn_keys)
        }
        #: flat per-connection criticality, refreshed in place by
        #: :meth:`initial_flat` / :meth:`update_flat`.
        self.conn_crit = np.zeros(self.num_connections)
        self._delay_view = rr.search_view().delay_ns
        #: per-net fragment memo for build_route_forest: across PathFinder
        #: iterations only re-routed nets are re-flattened.
        self._frag_cache: Dict[int, tuple] = {}

    # -- flat hot path -------------------------------------------------------

    def _fold_to_conns(self, crit: np.ndarray) -> np.ndarray:
        """Sharpen, cap and max-fold edge criticalities into conn_crit."""
        if self.exponent != 1.0:
            crit = crit**self.exponent
        crit = np.minimum(crit, self.max_criticality)
        self.conn_crit.fill(0.0)
        ec = self._edge_conn
        m = ec >= 0
        if m.any():
            np.maximum.at(self.conn_crit, ec[m], crit[m])
        return self.conn_crit

    def initial_flat(self) -> np.ndarray:
        """Placement-estimate criticalities as the flat conn_crit vector."""
        *_, crit, dmax, _depth = _scan(self.graph, self._estimate)
        self.critical_path_ns = dmax
        return self._fold_to_conns(crit)

    def update_flat(self, routes, forest=None) -> np.ndarray:
        """Re-time the route trees over the flat forest, in place.

        ``forest`` defaults to flattening ``routes`` (the directed kernels'
        trees carry connection lists, so the build is one cheap pass); the
        delay extraction, STA scans and criticality fold are then pure
        NumPy.  Returns :attr:`conn_crit` (the same array object every
        call).
        """
        if forest is None:
            from ..par.forest import build_route_forest

            forest = build_route_forest(routes, self.device.rr_graph, cache=self._frag_cache)
        edge_delay = self._edge_delay_from_forest(forest)
        *_, crit, dmax, _depth = _scan(self.graph, edge_delay)
        self.critical_path_ns = dmax
        self.updates += 1
        obs_metrics.add("sta.retime_updates")
        return self._fold_to_conns(crit)

    def _edge_delay_from_forest(self, forest) -> np.ndarray:
        """Routed edge delays from the forest (estimate where unrouted)."""
        from ..par.forest import join_sorted

        conn_d, ok = forest.connection_delays(self._delay_view)
        keys = forest.connection_keys()
        edge_delay = self._estimate.copy()
        if keys.size == 0 or self.num_connections == 0:
            return edge_delay
        # Scatter the forest connections onto the tracker's cid space.
        # Duplicate keys (two net pins on one block) carry identical
        # accumulated delays, so last-write-wins is exact.
        pos, matched = join_sorted(self._conn_keys, keys)
        hit = ok & matched
        cid_delay = np.full(self.num_connections, np.nan)
        cid_delay[pos[hit]] = conn_d[hit]
        ec = self._edge_conn
        d = cid_delay[np.maximum(ec, 0)]
        use = (ec >= 0) & ~np.isnan(d)
        edge_delay[use] = d[use]
        return edge_delay

    # -- legacy dict path (PR 4; kept as the equivalence baseline) -----------

    def _to_conn_dict(self, crit: np.ndarray) -> Dict[Tuple[int, int], float]:
        if self.exponent != 1.0:
            crit = crit**self.exponent
        crit = np.minimum(crit, self.max_criticality)
        g = self.graph
        out: Dict[Tuple[int, int], float] = {}
        for i in range(g.num_edges):
            srr = self._sink_rr.get(int(g.edge_dst[i]))
            if srr is None:
                continue
            key = (int(g.edge_net[i]), srr)
            c = float(crit[i])
            if c > out.get(key, -1.0):
                out[key] = c
        return out

    def initial(self) -> Dict[Tuple[int, int], float]:
        """Placement-estimate criticalities for the first iteration (dict)."""
        *_, crit, dmax, _depth = _scan(self.graph, self._estimate)
        self.critical_path_ns = dmax
        return self._to_conn_dict(crit)

    def update(self, routes) -> Dict[Tuple[int, int], float]:
        """Re-time the route trees with the per-net dict walk (dict)."""
        edge_delay, _w, _p = routed_edge_delays(
            self.graph, routes, self.placement, self.device, fallback=self._estimate
        )
        *_, crit, dmax, _depth = _scan(self.graph, edge_delay)
        self.critical_path_ns = dmax
        self.updates += 1
        obs_metrics.add("sta.retime_updates")
        return self._to_conn_dict(crit)
