"""Connection-delay models: routed, placement-estimated, structural.

The timing graph's edge delays come from one of three sources, in decreasing
order of fidelity:

* :func:`routed_edge_delays` -- exact per-sink delays walked out of the
  router's route trees.  Each connection's delay is the sum of the
  per-resource node delays (:func:`repro.fpga.routing_graph.rr_delay_ns`)
  along the unique tree path from the net's SOURCE to that sink, and the
  walk also counts the wire / switch / pin elements so the critical-path
  breakdown can itemize them.  When the routing carries a flat
  :class:`~repro.par.forest.RouteForest` (the directed kernels emit one),
  the extraction is pure NumPy -- one depth-levelized accumulation over
  the forest arrays plus a ``searchsorted`` join onto the timing edges,
  bit-identical to the legacy walk.  Without a forest, route trees that
  carry the router's connection list (``NetRoute.connections``) are walked
  exactly per net; plain node-list trees fall back to a BFS over the RR
  adjacency restricted to the tree's nodes.
* :func:`estimated_edge_delays` -- pre-route estimate from placement:
  Manhattan distance in unit wires plus the pin hops.  This seeds the
  timing-driven router's first iteration.
* :func:`structural_edge_delays` -- no placement at all: every connection
  costs one wire hop plus pins.  This is the pre-placement estimate the
  criticality-weighted placer anneals against.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..fpga.device import Device
from ..par.netlist import PhysicalNetlist
from ..par.placement import Placement
from .graph import TimingGraph

__all__ = [
    "sink_rr_of_blocks",
    "sink_rr_array",
    "routed_edge_delays",
    "routed_wirecount_edge_delays",
    "estimated_edge_delays",
    "estimated_edge_delays_from_coords",
    "structural_edge_delays",
]


def sink_rr_of_blocks(
    netlist: PhysicalNetlist, placement: Placement, device: Device
) -> Dict[int, int]:
    """Map every placed block to its SINK RR node.

    Delegates to the router's canonical terminal mapping
    (:func:`repro.par.routing.terminal_rr_nodes`) so the criticality keys
    the tracker hands back are guaranteed to match the sink ids the router
    searches for.
    """
    from ..par.routing import terminal_rr_nodes

    _src_of, sink_of = terminal_rr_nodes(netlist, placement, device.rr_graph)
    return sink_of


def sink_rr_array(graph: TimingGraph, sink_of: Dict[int, int]) -> np.ndarray:
    """``sink_of`` as a flat int64 array over timing-graph nodes (-1 unknown)."""
    arr = np.full(graph.num_nodes, -1, dtype=np.int64)
    for block, sink in sink_of.items():
        arr[block] = sink
    return arr


def _forest_edge_data(
    graph: TimingGraph,
    forest,
    sink_arr: np.ndarray,
    delay_ns: np.ndarray,
    is_wire: np.ndarray,
    is_pin: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Join per-forest-connection (delay, wires, pins) onto the timing edges.

    Returns ``(hit, delay, wires, pins)`` over the graph's edges, where
    ``hit`` marks edges whose ``(net, sink_rr)`` key matched a routed
    connection.  Duplicate forest keys (two net pins on one block) carry
    identical accumulated values, so the first occurrence is taken.
    """
    from ..par.forest import join_sorted

    conn_d, conn_w, conn_p, conn_ok = forest.connection_delay_elements(delay_ns, is_wire, is_pin)
    num_edges = graph.num_edges
    delay = np.zeros(num_edges)
    wires = np.zeros(num_edges, dtype=np.int32)
    pins = np.zeros(num_edges, dtype=np.int32)
    keys = forest.connection_keys()[conn_ok]
    if keys.size == 0 or num_edges == 0:
        return np.zeros(num_edges, dtype=bool), delay, wires, pins
    uk, ui = np.unique(keys, return_index=True)
    edge_sink = sink_arr[graph.edge_dst]
    ekey = graph.edge_net.astype(np.int64) * forest.num_rr_nodes + edge_sink
    pos, matched = join_sorted(uk, ekey)
    hit = (edge_sink >= 0) & matched
    src = ui[pos[hit]]
    delay[hit] = conn_d[conn_ok][src]
    wires[hit] = conn_w[conn_ok][src]
    pins[hit] = conn_p[conn_ok][src]
    return hit, delay, wires, pins


def _walk_connections(conns, delay_ns, is_wire, is_pin, acc):
    """Accumulate (delay, wires, pins) per tree node from a connection list.

    ``conns`` is the router's ordered ``(target, path, attach)`` list: every
    path's nodes hang off ``attach`` (already accumulated), target first.
    """
    for target, path, attach in conns:
        if not path:
            # Duplicate sink: the target node is already in the tree.
            continue
        base = acc.get(attach)
        if base is None:
            continue
        d, w, p = base
        for n in reversed(path):
            d = d + float(delay_ns[n])
            if is_wire[n]:
                w += 1
            elif is_pin[n]:
                p += 1
            acc[n] = (d, w, p)


def _walk_bfs(nodes, source, fanouts, delay_ns, is_wire, is_pin, acc):
    """BFS fallback over the RR adjacency restricted to the tree's nodes."""
    node_set = set(nodes)
    acc[source] = (0.0, 0, 0)
    frontier = [source]
    while frontier:
        nxt = []
        for u in frontier:
            du, wu, pu = acc[u]
            for v in fanouts(u):
                v = int(v)
                if v in node_set and v not in acc:
                    acc[v] = (
                        du + float(delay_ns[v]),
                        wu + (1 if is_wire[v] else 0),
                        pu + (1 if is_pin[v] else 0),
                    )
                    nxt.append(v)
        frontier = nxt


def routed_edge_delays(
    graph: TimingGraph,
    routes: Dict[int, object],
    placement: Placement,
    device: Device,
    fallback: Optional[np.ndarray] = None,
    forest=None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact edge delays (and wire / pin counts) from route trees.

    Returns ``(edge_delay, edge_wires, edge_pins)`` aligned with the graph's
    edge arrays.  Connections whose net has no route tree fall back to
    ``fallback`` (default: the placement estimate).

    With a ``forest`` (:class:`~repro.par.forest.RouteForest`, as the
    directed kernels attach to their :class:`~repro.par.routing.RoutingResult`)
    the extraction runs entirely on flat arrays -- no per-net Python walk
    -- and produces bit-identical delays to the legacy dict walk below.
    """
    from ..fpga.routing_graph import RRNodeType

    rr = device.rr_graph
    view = rr.search_view()
    delay_ns = view.delay_ns
    ntype = rr.node_type
    is_wire = (ntype == RRNodeType.CHANX) | (ntype == RRNodeType.CHANY)
    is_pin = (ntype == RRNodeType.OPIN) | (ntype == RRNodeType.IPIN)

    if fallback is None:
        fallback = estimated_edge_delays(graph, placement, device.arch)[0]
    edge_delay = fallback.copy()
    edge_wires = np.zeros(graph.num_edges, dtype=np.int32)
    edge_pins = np.zeros(graph.num_edges, dtype=np.int32)

    sink_of = sink_rr_of_blocks(graph.netlist, placement, device)

    if forest is not None:
        hit, delay, wires, pins = _forest_edge_data(
            graph,
            forest,
            sink_rr_array(graph, sink_of),
            delay_ns,
            is_wire,
            is_pin,
        )
        edge_delay[hit] = delay[hit]
        edge_wires[hit] = wires[hit]
        edge_pins[hit] = pins[hit]
        return edge_delay, edge_wires, edge_pins

    # Per-net accumulated (delay, wires, pins) at every tree node.
    per_net: Dict[int, Dict[int, Tuple[float, int, int]]] = {}
    for nid, net_route in routes.items():
        nodes = net_route.nodes
        if not nodes:
            continue
        acc: Dict[int, Tuple[float, int, int]] = {}
        conns = getattr(net_route, "connections", None)
        if conns is not None:
            acc[nodes[0]] = (0.0, 0, 0)
            _walk_connections(conns, delay_ns, is_wire, is_pin, acc)
        else:
            _walk_bfs(nodes, nodes[0], rr.fanouts, delay_ns, is_wire, is_pin, acc)
        per_net[int(nid)] = acc

    for i in range(graph.num_edges):
        acc = per_net.get(int(graph.edge_net[i]))
        if acc is None:
            continue
        srr = sink_of.get(int(graph.edge_dst[i]))
        if srr is None:
            continue
        hit = acc.get(srr)
        if hit is None:
            continue
        edge_delay[i], edge_wires[i], edge_pins[i] = hit
    return edge_delay, edge_wires, edge_pins


def routed_wirecount_edge_delays(
    graph: TimingGraph, routes: Dict[int, object], device: Device
) -> np.ndarray:
    """Per-net average-wires-per-sink estimate (routes without placement).

    Without a placement the block -> SINK-RR mapping is unknown, so exact
    per-sink tree walks are impossible -- but the route trees still carry
    each net's total wire count.  This is the seed implementation's model:
    every connection of a net charges the net's wires divided by its sink
    count, so two routings of different wirelength yield different critical
    paths even in this degraded mode.
    """
    from ..fpga.routing_graph import RRNodeType

    rr = device.rr_graph
    arch = device.arch
    ntype = rr.node_type
    is_wire = (ntype == RRNodeType.CHANX) | (ntype == RRNodeType.CHANY)
    wires_per_sink: Dict[int, float] = {}
    for nid, net_route in routes.items():
        wires = sum(1 for n in net_route.nodes if is_wire[n])
        sinks = max(1, len(graph.netlist.nets[int(nid)].sinks))
        wires_per_sink[int(nid)] = wires / sinks
    unit = arch.wire_hop_delay_ns
    edge_delay = np.full(graph.num_edges, 2.0 * arch.pin_delay_ns + unit)
    for i in range(graph.num_edges):
        per_sink = wires_per_sink.get(int(graph.edge_net[i]))
        if per_sink is not None:
            edge_delay[i] = 2.0 * arch.pin_delay_ns + max(1.0, per_sink) * unit
    return edge_delay


def estimated_edge_delays(
    graph: TimingGraph, placement: Placement, arch
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Placement-distance delay estimate: one unit wire per Manhattan unit.

    Every connection charges two pin hops (OPIN + IPIN) plus at least one
    wire hop -- the router cannot connect two blocks with fewer resources.
    """
    xs = np.zeros(graph.num_nodes, dtype=np.int64)
    ys = np.zeros(graph.num_nodes, dtype=np.int64)
    for bid, site in placement.block_site.items():
        xs[bid] = site.x
        ys[bid] = site.y
    return estimated_edge_delays_from_coords(graph, xs, ys, arch)


def estimated_edge_delays_from_coords(
    graph: TimingGraph, xs: np.ndarray, ys: np.ndarray, arch
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """:func:`estimated_edge_delays` over flat per-block coordinate arrays.

    This is the re-timing seam of the incremental-STA placer: the annealing
    kernel hands its live ``block_x`` / ``block_y`` coordinate lists straight
    in, with no ``Placement`` object on the hot path.
    """
    num_edges = graph.num_edges
    xs = np.asarray(xs, dtype=np.int64)
    ys = np.asarray(ys, dtype=np.int64)
    dist = np.abs(xs[graph.edge_src] - xs[graph.edge_dst]) + np.abs(
        ys[graph.edge_src] - ys[graph.edge_dst]
    )
    wires = np.maximum(dist, 1).astype(np.int32)
    delay = 2.0 * arch.pin_delay_ns + wires * arch.wire_hop_delay_ns
    pins = np.full(num_edges, 2, dtype=np.int32)
    return delay, wires, pins


def structural_edge_delays(graph: TimingGraph, arch) -> np.ndarray:
    """Placement-free estimate: every connection is one wire hop plus pins."""
    unit = 2.0 * arch.pin_delay_ns + arch.wire_hop_delay_ns
    return np.full(graph.num_edges, unit, dtype=np.float64)
