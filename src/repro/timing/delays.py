"""Connection-delay models: routed, placement-estimated, structural.

The timing graph's edge delays come from one of three sources, in decreasing
order of fidelity:

* :func:`routed_edge_delays` -- exact per-sink delays walked out of the
  router's route trees.  Each connection's delay is the sum of the
  per-resource node delays (:func:`repro.fpga.routing_graph.rr_delay_ns`)
  along the unique tree path from the net's SOURCE to that sink, and the
  walk also counts the wire / switch / pin elements so the critical-path
  breakdown can itemize them.  Route trees that carry the router's
  connection list (``NetRoute.connections``, the astar/wavefront kernels)
  are walked exactly; plain node-list trees fall back to a BFS over the RR
  adjacency restricted to the tree's nodes.
* :func:`estimated_edge_delays` -- pre-route estimate from placement:
  Manhattan distance in unit wires plus the pin hops.  This seeds the
  timing-driven router's first iteration.
* :func:`structural_edge_delays` -- no placement at all: every connection
  costs one wire hop plus pins.  This is the pre-placement estimate the
  criticality-weighted placer anneals against.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..fpga.device import Device
from ..par.netlist import PhysicalNetlist
from ..par.placement import Placement
from .graph import TimingGraph

__all__ = [
    "sink_rr_of_blocks",
    "routed_edge_delays",
    "routed_wirecount_edge_delays",
    "estimated_edge_delays",
    "structural_edge_delays",
]


def sink_rr_of_blocks(
    netlist: PhysicalNetlist, placement: Placement, device: Device
) -> Dict[int, int]:
    """Map every placed block to its SINK RR node.

    Delegates to the router's canonical terminal mapping
    (:func:`repro.par.routing.terminal_rr_nodes`) so the criticality keys
    the tracker hands back are guaranteed to match the sink ids the router
    searches for.
    """
    from ..par.routing import terminal_rr_nodes

    _src_of, sink_of = terminal_rr_nodes(netlist, placement, device.rr_graph)
    return sink_of


def _walk_connections(conns, delay_ns, is_wire, is_pin, acc):
    """Accumulate (delay, wires, pins) per tree node from a connection list.

    ``conns`` is the router's ordered ``(target, path, attach)`` list: every
    path's nodes hang off ``attach`` (already accumulated), target first.
    """
    for target, path, attach in conns:
        if not path:
            # Duplicate sink: the target node is already in the tree.
            continue
        base = acc.get(attach)
        if base is None:
            continue
        d, w, p = base
        for n in reversed(path):
            d = d + float(delay_ns[n])
            if is_wire[n]:
                w += 1
            elif is_pin[n]:
                p += 1
            acc[n] = (d, w, p)


def _walk_bfs(nodes, source, fanouts, delay_ns, is_wire, is_pin, acc):
    """BFS fallback over the RR adjacency restricted to the tree's nodes."""
    node_set = set(nodes)
    acc[source] = (0.0, 0, 0)
    frontier = [source]
    while frontier:
        nxt = []
        for u in frontier:
            du, wu, pu = acc[u]
            for v in fanouts(u):
                v = int(v)
                if v in node_set and v not in acc:
                    acc[v] = (
                        du + float(delay_ns[v]),
                        wu + (1 if is_wire[v] else 0),
                        pu + (1 if is_pin[v] else 0),
                    )
                    nxt.append(v)
        frontier = nxt


def routed_edge_delays(
    graph: TimingGraph,
    routes: Dict[int, object],
    placement: Placement,
    device: Device,
    fallback: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact edge delays (and wire / pin counts) from route trees.

    Returns ``(edge_delay, edge_wires, edge_pins)`` aligned with the graph's
    edge arrays.  Connections whose net has no route tree fall back to
    ``fallback`` (default: the placement estimate).
    """
    from ..fpga.routing_graph import RRNodeType

    rr = device.rr_graph
    view = rr.search_view()
    delay_ns = view.delay_ns
    ntype = rr.node_type
    is_wire = (ntype == RRNodeType.CHANX) | (ntype == RRNodeType.CHANY)
    is_pin = (ntype == RRNodeType.OPIN) | (ntype == RRNodeType.IPIN)

    if fallback is None:
        fallback = estimated_edge_delays(graph, placement, device.arch)[0]
    edge_delay = fallback.copy()
    edge_wires = np.zeros(graph.num_edges, dtype=np.int32)
    edge_pins = np.zeros(graph.num_edges, dtype=np.int32)

    sink_of = sink_rr_of_blocks(graph.netlist, placement, device)

    # Per-net accumulated (delay, wires, pins) at every tree node.
    per_net: Dict[int, Dict[int, Tuple[float, int, int]]] = {}
    for nid, net_route in routes.items():
        nodes = net_route.nodes
        if not nodes:
            continue
        acc: Dict[int, Tuple[float, int, int]] = {}
        conns = getattr(net_route, "connections", None)
        if conns is not None:
            acc[nodes[0]] = (0.0, 0, 0)
            _walk_connections(conns, delay_ns, is_wire, is_pin, acc)
        else:
            _walk_bfs(nodes, nodes[0], rr.fanouts, delay_ns, is_wire, is_pin, acc)
        per_net[int(nid)] = acc

    for i in range(graph.num_edges):
        acc = per_net.get(int(graph.edge_net[i]))
        if acc is None:
            continue
        srr = sink_of.get(int(graph.edge_dst[i]))
        if srr is None:
            continue
        hit = acc.get(srr)
        if hit is None:
            continue
        edge_delay[i], edge_wires[i], edge_pins[i] = hit
    return edge_delay, edge_wires, edge_pins


def routed_wirecount_edge_delays(
    graph: TimingGraph, routes: Dict[int, object], device: Device
) -> np.ndarray:
    """Per-net average-wires-per-sink estimate (routes without placement).

    Without a placement the block -> SINK-RR mapping is unknown, so exact
    per-sink tree walks are impossible -- but the route trees still carry
    each net's total wire count.  This is the seed implementation's model:
    every connection of a net charges the net's wires divided by its sink
    count, so two routings of different wirelength yield different critical
    paths even in this degraded mode.
    """
    from ..fpga.routing_graph import RRNodeType

    rr = device.rr_graph
    arch = device.arch
    ntype = rr.node_type
    is_wire = (ntype == RRNodeType.CHANX) | (ntype == RRNodeType.CHANY)
    wires_per_sink: Dict[int, float] = {}
    for nid, net_route in routes.items():
        wires = sum(1 for n in net_route.nodes if is_wire[n])
        sinks = max(1, len(graph.netlist.nets[int(nid)].sinks))
        wires_per_sink[int(nid)] = wires / sinks
    unit = arch.wire_hop_delay_ns
    edge_delay = np.full(graph.num_edges, 2.0 * arch.pin_delay_ns + unit)
    for i in range(graph.num_edges):
        per_sink = wires_per_sink.get(int(graph.edge_net[i]))
        if per_sink is not None:
            edge_delay[i] = 2.0 * arch.pin_delay_ns + max(1.0, per_sink) * unit
    return edge_delay


def estimated_edge_delays(
    graph: TimingGraph, placement: Placement, arch
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Placement-distance delay estimate: one unit wire per Manhattan unit.

    Every connection charges two pin hops (OPIN + IPIN) plus at least one
    wire hop -- the router cannot connect two blocks with fewer resources.
    """
    num_edges = graph.num_edges
    xs = np.zeros(graph.num_nodes, dtype=np.int64)
    ys = np.zeros(graph.num_nodes, dtype=np.int64)
    for bid, site in placement.block_site.items():
        xs[bid] = site.x
        ys[bid] = site.y
    dist = np.abs(xs[graph.edge_src] - xs[graph.edge_dst]) + np.abs(
        ys[graph.edge_src] - ys[graph.edge_dst]
    )
    wires = np.maximum(dist, 1).astype(np.int32)
    delay = 2.0 * arch.pin_delay_ns + wires * arch.wire_hop_delay_ns
    pins = np.full(num_edges, 2, dtype=np.int32)
    return delay, wires, pins


def structural_edge_delays(graph: TimingGraph, arch) -> np.ndarray:
    """Placement-free estimate: every connection is one wire hop plus pins."""
    unit = 2.0 * arch.pin_delay_ns + arch.wire_hop_delay_ns
    return np.full(graph.num_edges, unit, dtype=np.float64)
