"""Routing-resource graph of the island-style FPGA.

The routing-resource (RR) graph is the data structure the PathFinder router
(TROUTE in the paper's tool names) works on: a directed graph whose nodes are
sources, sinks, block pins and unit-length channel wires, and whose edges are
the programmable switches of the FPGA.

The construction mirrors VPR's graph for the 4-LUT "sanitized" architecture:

* every logic block exposes one SOURCE -> OPIN and ``lut_inputs`` IPIN -> SINK
  paths,
* connection blocks connect pins to the adjacent channel tracks
  (``fc_in`` / ``fc_out`` fractions of the channel),
* disjoint (subset) switch blocks connect wires of the same track index where
  a horizontal and a vertical channel meet.

Node attributes are stored in parallel NumPy arrays and adjacency in CSR form
so that the router's inner loop stays cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .architecture import FPGAArchitecture

__all__ = [
    "RRNodeType",
    "RRGraph",
    "RouterSearchView",
    "build_rr_graph",
    "RR_BASE_COST",
    "rr_delay_ns",
]


class RRNodeType:
    """Node-type codes of the RR graph."""

    SOURCE = 0
    SINK = 1
    OPIN = 2
    IPIN = 3
    CHANX = 4
    CHANY = 5

    NAMES = {0: "SOURCE", 1: "SINK", 2: "OPIN", 3: "IPIN", 4: "CHANX", 5: "CHANY"}


#: Congestion-free cost of occupying one RR node, by node type.  This is the
#: router's cost model, exported here so :class:`RouterSearchView` can bake a
#: flat base-cost vector next to the CSR arrays it already owns.
RR_BASE_COST = {
    RRNodeType.SOURCE: 0.1,
    RRNodeType.SINK: 0.1,
    RRNodeType.OPIN: 0.9,
    RRNodeType.IPIN: 0.9,
    RRNodeType.CHANX: 1.0,
    RRNodeType.CHANY: 1.0,
}


def rr_delay_ns(arch: FPGAArchitecture) -> Dict[int, float]:
    """Intrinsic delay of occupying one RR node, by node type, in ns.

    This is the per-resource delay model of the timing subsystem
    (:mod:`repro.timing`): a channel wire charges one switch (to enter it)
    plus one unit segment, pins charge the connection-block hop, and the
    logical SOURCE/SINK endpoints are free.  The arrival time of a routed
    connection is the sum of these node delays along its route-tree path.
    """
    wire = arch.wire_hop_delay_ns
    pin = arch.pin_delay_ns
    return {
        RRNodeType.SOURCE: 0.0,
        RRNodeType.SINK: 0.0,
        RRNodeType.OPIN: pin,
        RRNodeType.IPIN: pin,
        RRNodeType.CHANX: wire,
        RRNodeType.CHANY: wire,
    }


@dataclass
class RRGraph:
    """Routing-resource graph with CSR adjacency."""

    arch: FPGAArchitecture
    node_type: np.ndarray        # int8 per node
    node_x: np.ndarray           # int16
    node_y: np.ndarray           # int16
    node_track: np.ndarray       # int16 (track index; -1 for pins)
    node_capacity: np.ndarray    # int16
    edge_ptr: np.ndarray         # CSR row pointers (num_nodes + 1)
    edge_dst: np.ndarray         # CSR column indices
    #: lookup tables filled in by the builder
    clb_source: Dict[Tuple[int, int], int]
    clb_sink: Dict[Tuple[int, int], int]
    clb_opin: Dict[Tuple[int, int], int]
    io_source: Dict[Tuple[int, int, int], int]
    io_sink: Dict[Tuple[int, int, int], int]

    @property
    def num_nodes(self) -> int:
        return len(self.node_type)

    @property
    def num_edges(self) -> int:
        return len(self.edge_dst)

    def fanouts(self, node: int) -> np.ndarray:
        """Destination nodes of all switches leaving ``node``."""
        return self.edge_dst[self.edge_ptr[node] : self.edge_ptr[node + 1]]

    def num_wire_nodes(self) -> int:
        return int(
            np.count_nonzero(
                (self.node_type == RRNodeType.CHANX) | (self.node_type == RRNodeType.CHANY)
            )
        )

    def is_wire(self, node: int) -> bool:
        return self.node_type[node] in (RRNodeType.CHANX, RRNodeType.CHANY)

    def describe_node(self, node: int) -> str:  # pragma: no cover - debug helper
        t = RRNodeType.NAMES[int(self.node_type[node])]
        return (
            f"{t}({int(self.node_x[node])},{int(self.node_y[node])},"
            f"t={int(self.node_track[node])})"
        )

    def search_view(self) -> "RouterSearchView":
        """Precomputed flat-array view of the graph for the directed router.

        Built once per graph and cached; repeated :func:`repro.par.routing.route`
        calls on the same device (PathFinder iterations, benchmark reruns) share
        it.
        """
        view = self.__dict__.get("_search_view")
        if view is None:
            view = RouterSearchView(self)
            self.__dict__["_search_view"] = view
        return view


class RouterSearchView:
    """Flat mirrors of an :class:`RRGraph` for wavefront search kernels.

    The directed routers expand exclusively over SOURCE/OPIN/CHANX/CHANY
    nodes: IPIN and SINK successors are stripped from the adjacency here, and
    each sink instead exposes an *entry map* ``wire -> [ipins]`` derived from
    the reverse edges, so the search completes on the first wire adjacent to
    the target block instead of flooding every input pin it passes.  The node
    coordinates double as the admissible geometric lookahead: every remaining
    unit of Manhattan distance to the target costs at least one unit-length
    wire of base cost 1.0.

    The filtered adjacency is materialized twice from one construction pass:

    * ``csr_ptr`` / ``csr_dst`` / ``csr_deg`` -- contiguous NumPy CSR arrays,
      the data layout of the vectorized delta-stepping ``wavefront`` kernel,
      alongside ``xs_arr`` / ``ys_arr`` (Manhattan-lookahead tables),
      ``base_cost`` (congestion-free node costs, :data:`RR_BASE_COST`) and
      ``delay_ns`` (per-node intrinsic delays, :func:`rr_delay_ns` -- the
      flat delay model consumed by the STA engine and the timing-driven
      router objective);
    * ``adj_search`` -- per-node Python lists sliced out of the same CSR,
      the layout of the scalar heap-based ``astar`` kernel.
    """

    def __init__(self, rr: RRGraph) -> None:
        self.rr = rr
        self.xs: List[int] = rr.node_x.tolist()
        self.ys: List[int] = rr.node_y.tolist()
        self.types: List[int] = rr.node_type.tolist()
        self.capacity: List[int] = rr.node_capacity.tolist()

        # Filtered adjacency (no IPIN/SINK targets) as contiguous NumPy CSR.
        num_nodes = rr.num_nodes
        dst_type = rr.node_type[rr.edge_dst]
        keep = (dst_type != RRNodeType.IPIN) & (dst_type != RRNodeType.SINK)
        edge_src = np.repeat(
            np.arange(num_nodes, dtype=np.int32),
            np.diff(rr.edge_ptr).astype(np.int64),
        )
        self.csr_dst: np.ndarray = rr.edge_dst[keep].astype(np.int32)
        self.csr_deg: np.ndarray = np.bincount(
            edge_src[keep], minlength=num_nodes
        ).astype(np.int64)
        self.csr_ptr: np.ndarray = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(self.csr_deg, out=self.csr_ptr[1:])

        # Vector mirrors of the per-node attributes used by the wavefront
        # kernel: lookahead tables and the congestion-free cost floor.
        self.xs_arr: np.ndarray = rr.node_x.astype(np.int64)
        self.ys_arr: np.ndarray = rr.node_y.astype(np.int64)
        base = np.empty(num_nodes, dtype=np.float64)
        for t, c in RR_BASE_COST.items():
            base[rr.node_type == t] = c
        self.base_cost: np.ndarray = base
        delay = np.empty(num_nodes, dtype=np.float64)
        for t, d in rr_delay_ns(rr.arch).items():
            delay[rr.node_type == t] = d
        self.delay_ns: np.ndarray = delay

        # The scalar astar kernel walks the same filtered adjacency as Python
        # lists; slice them out of the CSR just built.
        ptr = self.csr_ptr.tolist()
        dst = self.csr_dst.tolist()
        self.adj_search: List[List[int]] = [
            dst[ptr[i]: ptr[i + 1]] for i in range(num_nodes)
        ]

        # Reverse CSR (for per-sink entry maps, built lazily below).
        order = np.argsort(rr.edge_dst, kind="stable")
        self._rev_src = np.repeat(
            np.arange(rr.num_nodes, dtype=np.int32),
            np.diff(rr.edge_ptr).astype(np.int64),
        )[order]
        self._rev_ptr = np.zeros(rr.num_nodes + 1, dtype=np.int64)
        np.cumsum(np.bincount(rr.edge_dst, minlength=rr.num_nodes), out=self._rev_ptr[1:])
        self._entries: Dict[int, Dict[int, List[int]]] = {}
        self._entry_arrays: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._entry_csr: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

    def _in_edges(self, node: int) -> List[int]:
        lo, hi = int(self._rev_ptr[node]), int(self._rev_ptr[node + 1])
        return self._rev_src[lo:hi].tolist()

    def entries_of(self, sink: int) -> Dict[int, List[int]]:
        """Map ``wire -> [ipins]`` of every wire that can enter ``sink``."""
        entry = self._entries.get(sink)
        if entry is None:
            entry = {}
            for ipin in self._in_edges(sink):
                for wire in self._in_edges(ipin):
                    entry.setdefault(wire, []).append(ipin)
            self._entries[sink] = entry
        return entry

    def entry_arrays(self, sink: int) -> Tuple[np.ndarray, np.ndarray]:
        """Entry map of ``sink`` flattened to parallel (wires, ipins) arrays.

        One element per feasible ``wire -> ipin`` hop into the sink; the
        wavefront kernel reduces ``g[wire] + cost[ipin]`` over these arrays to
        find the cheapest completion, so they are cached per sink exactly like
        the dict form.
        """
        arrays = self._entry_arrays.get(sink)
        if arrays is None:
            wires: List[int] = []
            ipins: List[int] = []
            for wire, pins in self.entries_of(sink).items():
                for ipin in pins:
                    wires.append(wire)
                    ipins.append(ipin)
            arrays = (
                np.asarray(wires, dtype=np.int64),
                np.asarray(ipins, dtype=np.int64),
            )
            self._entry_arrays[sink] = arrays
        return arrays

    def entry_csr(self, sink: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Entry map of ``sink`` as a wire-sorted CSR for the native kernel.

        ``(wires, ptr, ipins)``: ``wires`` is the sorted unique wire set, and
        ``ipins[ptr[i]:ptr[i + 1]]`` lists that wire's feasible entry pins in
        the same order as :meth:`entries_of` (the first-minimum tie-break of
        the completion scan depends on that order).  Sorted wires let the C
        kernel binary-search during expansion instead of hashing.
        """
        csr = self._entry_csr.get(sink)
        if csr is None:
            entry = self.entries_of(sink)
            wires = np.asarray(sorted(entry), dtype=np.int64)
            ptr = np.zeros(len(wires) + 1, dtype=np.int64)
            ipins: List[int] = []
            for i, wire in enumerate(wires.tolist()):
                ipins.extend(entry[wire])
                ptr[i + 1] = len(ipins)
            csr = (wires, ptr, np.asarray(ipins, dtype=np.int64))
            self._entry_csr[sink] = csr
        return csr


class _Builder:
    """Incremental RR-graph builder."""

    def __init__(self, arch: FPGAArchitecture) -> None:
        self.arch = arch
        self.types: List[int] = []
        self.xs: List[int] = []
        self.ys: List[int] = []
        self.tracks: List[int] = []
        self.caps: List[int] = []
        self.adj: List[List[int]] = []

    def add_node(self, ntype: int, x: int, y: int, track: int = -1, capacity: int = 1) -> int:
        self.types.append(ntype)
        self.xs.append(x)
        self.ys.append(y)
        self.tracks.append(track)
        self.caps.append(capacity)
        self.adj.append([])
        return len(self.types) - 1

    def add_edge(self, src: int, dst: int) -> None:
        self.adj[src].append(dst)

    def add_bidir(self, a: int, b: int) -> None:
        self.adj[a].append(b)
        self.adj[b].append(a)

    def finish(self, lookups) -> RRGraph:
        ptr = np.zeros(len(self.adj) + 1, dtype=np.int64)
        for i, lst in enumerate(self.adj):
            ptr[i + 1] = ptr[i] + len(lst)
        dst = np.empty(int(ptr[-1]), dtype=np.int32)
        for i, lst in enumerate(self.adj):
            dst[ptr[i] : ptr[i + 1]] = lst
        return RRGraph(
            arch=self.arch,
            node_type=np.array(self.types, dtype=np.int8),
            node_x=np.array(self.xs, dtype=np.int16),
            node_y=np.array(self.ys, dtype=np.int16),
            node_track=np.array(self.tracks, dtype=np.int16),
            node_capacity=np.array(self.caps, dtype=np.int16),
            edge_ptr=ptr,
            edge_dst=dst,
            **lookups,
        )


def _track_subset(channel_width: int, fraction: float) -> List[int]:
    """Evenly spaced subset of track indices reachable by a pin."""
    count = max(1, int(round(channel_width * fraction)))
    if count >= channel_width:
        return list(range(channel_width))
    step = channel_width / count
    return sorted({int(i * step) % channel_width for i in range(count)})


def build_rr_graph(arch: FPGAArchitecture) -> RRGraph:
    """Build the routing-resource graph for an architecture."""
    b = _Builder(arch)
    W = arch.channel_width
    width, height = arch.width, arch.height

    # ---- channel wires -------------------------------------------------------
    # CHANX(x, y, t): horizontal wire at channel y (0..height), column x (1..width)
    chanx: Dict[Tuple[int, int, int], int] = {}
    for y in range(0, height + 1):
        for x in range(1, width + 1):
            for t in range(W):
                chanx[(x, y, t)] = b.add_node(RRNodeType.CHANX, x, y, t)
    # CHANY(x, y, t): vertical wire at channel x (0..width), row y (1..height)
    chany: Dict[Tuple[int, int, int], int] = {}
    for x in range(0, width + 1):
        for y in range(1, height + 1):
            for t in range(W):
                chany[(x, y, t)] = b.add_node(RRNodeType.CHANY, x, y, t)

    # ---- switch blocks (disjoint / subset topology) ---------------------------
    for i in range(0, width + 1):
        for j in range(0, height + 1):
            for t in range(W):
                incident = []
                if i >= 1:
                    incident.append(chanx[(i, j, t)])          # wire ending at SB from the left
                if i + 1 <= width:
                    incident.append(chanx[(i + 1, j, t)])      # wire leaving SB to the right
                if j >= 1:
                    incident.append(chany[(i, j, t)])          # wire from below
                if j + 1 <= height:
                    incident.append(chany[(i, j + 1, t)])      # wire to above
                for a_idx in range(len(incident)):
                    for b_idx in range(a_idx + 1, len(incident)):
                        b.add_bidir(incident[a_idx], incident[b_idx])

    # ---- logic blocks ----------------------------------------------------------
    clb_source: Dict[Tuple[int, int], int] = {}
    clb_sink: Dict[Tuple[int, int], int] = {}
    clb_opin: Dict[Tuple[int, int], int] = {}
    out_tracks = _track_subset(W, arch.fc_out)
    in_tracks = _track_subset(W, arch.fc_in)

    def adjacent_channels(x: int, y: int) -> List[int]:
        """Wire nodes of the four channels around a logic block, all tracks."""
        nodes = []
        for t in range(W):
            nodes.append(chanx[(x, y, t)])       # channel above
            nodes.append(chanx[(x, y - 1, t)])   # channel below
            nodes.append(chany[(x, y, t)])       # channel to the right
            nodes.append(chany[(x - 1, y, t)])   # channel to the left
        return nodes

    def adjacent_tracks(x: int, y: int, tracks: List[int]) -> List[int]:
        nodes = []
        for t in tracks:
            nodes.append(chanx[(x, y, t)])
            nodes.append(chanx[(x, y - 1, t)])
            nodes.append(chany[(x, y, t)])
            nodes.append(chany[(x - 1, y, t)])
        return nodes

    for x in range(1, width + 1):
        for y in range(1, height + 1):
            src = b.add_node(RRNodeType.SOURCE, x, y)
            opin = b.add_node(RRNodeType.OPIN, x, y)
            sink = b.add_node(RRNodeType.SINK, x, y, capacity=arch.lut_inputs)
            b.add_edge(src, opin)
            clb_source[(x, y)] = src
            clb_opin[(x, y)] = opin
            clb_sink[(x, y)] = sink
            for wire in adjacent_tracks(x, y, out_tracks):
                b.add_edge(opin, wire)
            for pin in range(arch.lut_inputs):
                ipin = b.add_node(RRNodeType.IPIN, x, y)
                b.add_edge(ipin, sink)
                for wire in adjacent_tracks(x, y, in_tracks):
                    b.add_edge(wire, ipin)

    # ---- IO pads ----------------------------------------------------------------
    io_source: Dict[Tuple[int, int, int], int] = {}
    io_sink: Dict[Tuple[int, int, int], int] = {}

    def io_channel_nodes(x: int, y: int) -> List[int]:
        """Wire nodes of the single channel adjacent to a perimeter IO location."""
        nodes = []
        for t in range(W):
            if y == 0:
                nodes.append(chanx[(x, 0, t)])
            elif y == height + 1:
                nodes.append(chanx[(x, height, t)])
            elif x == 0:
                nodes.append(chany[(0, y, t)])
            else:  # x == width + 1
                nodes.append(chany[(width, y, t)])
        return nodes

    for site in arch.io_sites():
        x, y, sub = site.x, site.y, site.subtile
        src = b.add_node(RRNodeType.SOURCE, x, y, track=sub)
        opin = b.add_node(RRNodeType.OPIN, x, y, track=sub)
        ipin = b.add_node(RRNodeType.IPIN, x, y, track=sub)
        sink = b.add_node(RRNodeType.SINK, x, y, track=sub)
        b.add_edge(src, opin)
        b.add_edge(ipin, sink)
        for wire in io_channel_nodes(x, y):
            b.add_edge(opin, wire)
            b.add_edge(wire, ipin)
        io_source[(x, y, sub)] = src
        io_sink[(x, y, sub)] = sink

    return b.finish(
        dict(
            clb_source=clb_source,
            clb_sink=clb_sink,
            clb_opin=clb_opin,
            io_source=io_source,
            io_sink=io_sink,
        )
    )
