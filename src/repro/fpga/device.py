"""Device bundle: architecture + routing-resource graph + configuration layout."""

from __future__ import annotations

from dataclasses import dataclass

from .architecture import FPGAArchitecture, auto_size
from .bitstream import ConfigurationLayout
from .routing_graph import RRGraph, build_rr_graph

__all__ = ["Device", "build_device", "device_for_netlist"]


@dataclass
class Device:
    """A ready-to-use FPGA device model."""

    arch: FPGAArchitecture
    rr_graph: RRGraph
    config_layout: ConfigurationLayout

    @property
    def num_clb_sites(self) -> int:
        return self.arch.num_clb_sites

    @property
    def num_io_sites(self) -> int:
        return self.arch.num_io_sites

    def describe(self) -> str:
        return (
            f"{self.arch.describe()}; RR graph: {self.rr_graph.num_nodes} nodes / "
            f"{self.rr_graph.num_edges} switches; "
            f"{self.config_layout.total_frames} configuration frames"
        )


def build_device(arch: FPGAArchitecture) -> Device:
    """Build the routing graph and configuration layout for an architecture."""
    return Device(
        arch=arch,
        rr_graph=build_rr_graph(arch),
        config_layout=ConfigurationLayout(arch),
    )


def device_for_netlist(
    num_luts: int,
    num_ios: int,
    channel_width: int = 10,
    utilization: float = 0.8,
) -> Device:
    """Auto-size an island FPGA for a design and build its device model."""
    arch = auto_size(num_luts, num_ios, channel_width=channel_width, utilization=utilization)
    return build_device(arch)
