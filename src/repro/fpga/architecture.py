"""Island-style FPGA architecture model.

The paper performs place and route with the TPaR CAD tool on the "4LUT
sanitized" FPGA architecture that ships with VPR: an island-style array of
logic blocks, each containing a single 4-input LUT (one BLE per cluster),
surrounded by IO pads, with unit-length routing wires, subset (disjoint)
switch blocks and fully populated connection blocks.  This module describes
that architecture parametrically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Iterator, Tuple

__all__ = ["FPGAArchitecture", "Site", "auto_size"]


@dataclass(frozen=True)
class Site:
    """A placement site on the FPGA grid."""

    x: int
    y: int
    kind: str        # "clb" or "io"
    subtile: int = 0  # IO pads stack several sites per grid location

    def as_tuple(self) -> Tuple[int, int, str, int]:
        return (self.x, self.y, self.kind, self.subtile)


@dataclass(frozen=True)
class FPGAArchitecture:
    """Parametric description of the island-style FPGA.

    The logic array spans grid positions ``1..width`` by ``1..height``; the
    perimeter (x==0, x==width+1, y==0, y==height+1) holds IO pads.  Routing
    channels of ``channel_width`` unit-length wires run between adjacent grid
    rows and columns.
    """

    width: int
    height: int
    channel_width: int = 10
    lut_inputs: int = 4
    io_capacity: int = 2          #: IO pads per perimeter grid location
    fc_in: float = 1.0            #: fraction of channel wires a CLB input pin can reach
    fc_out: float = 1.0           #: fraction of channel wires a CLB output pin can drive
    lut_delay_ns: float = 0.4     #: intrinsic LUT delay (timing model)
    wire_delay_ns: float = 0.15   #: delay of one unit-length routing segment
    switch_delay_ns: float = 0.05  #: delay of one programmable routing switch
    pin_delay_ns: float = 0.05    #: connection-block pin delay (OPIN / IPIN)

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError("FPGA array must be at least 1x1")
        if self.channel_width < 1:
            raise ValueError("channel width must be positive")
        if not 0.0 < self.fc_in <= 1.0 or not 0.0 < self.fc_out <= 1.0:
            raise ValueError("fc_in / fc_out must be in (0, 1]")

    # -- capacity --------------------------------------------------------------

    @property
    def num_clb_sites(self) -> int:
        return self.width * self.height

    @property
    def num_io_sites(self) -> int:
        return 2 * (self.width + self.height) * self.io_capacity

    def clb_sites(self) -> Iterator[Site]:
        """All logic-block sites (x, y in 1..width/height)."""
        for x in range(1, self.width + 1):
            for y in range(1, self.height + 1):
                yield Site(x, y, "clb")

    def io_sites(self) -> Iterator[Site]:
        """All IO pad sites on the perimeter."""
        for x in range(1, self.width + 1):
            for sub in range(self.io_capacity):
                yield Site(x, 0, "io", sub)
                yield Site(x, self.height + 1, "io", sub)
        for y in range(1, self.height + 1):
            for sub in range(self.io_capacity):
                yield Site(0, y, "io", sub)
                yield Site(self.width + 1, y, "io", sub)

    def with_channel_width(self, channel_width: int) -> "FPGAArchitecture":
        """Copy of this architecture with a different channel width."""
        return replace(self, channel_width=channel_width)

    # -- timing model ------------------------------------------------------------

    @property
    def wire_hop_delay_ns(self) -> float:
        """Delay of extending a route by one unit wire (switch + segment).

        This is the unit the routers normalize against when blending delay
        into the timing-driven cost: a unit-length wire then costs exactly
        1.0 in delay terms, matching its congestion-free base cost, so the
        Manhattan lookahead stays admissible under any criticality blend.
        """
        return self.wire_delay_ns + self.switch_delay_ns

    def delay_model(self) -> Dict[str, float]:
        """The per-resource delays of the timing subsystem, by element kind.

        The kinds match the critical-path breakdown of
        :mod:`repro.timing`: ``lut`` (intrinsic LUT delay), ``wire`` (one
        unit-length segment), ``switch`` (one programmable switch) and
        ``pin`` (one connection-block OPIN/IPIN hop).
        """
        return {
            "lut": self.lut_delay_ns,
            "wire": self.wire_delay_ns,
            "switch": self.switch_delay_ns,
            "pin": self.pin_delay_ns,
        }

    # -- bookkeeping helpers -----------------------------------------------------

    def contains_clb(self, x: int, y: int) -> bool:
        return 1 <= x <= self.width and 1 <= y <= self.height

    def describe(self) -> str:
        """Human-readable one-line summary (used by benches and examples)."""
        return (
            f"{self.width}x{self.height} array, {self.lut_inputs}-LUT logic blocks, "
            f"W={self.channel_width}, {self.io_capacity} IO/pad site"
        )


def auto_size(
    num_luts: int,
    num_ios: int,
    channel_width: int = 10,
    utilization: float = 0.8,
    lut_inputs: int = 4,
    io_capacity: int = 2,
) -> FPGAArchitecture:
    """Pick the smallest square array that fits a design (VPR's auto-sizing rule).

    The array is sized so that at most ``utilization`` of the logic sites are
    used and the perimeter offers enough IO pads.
    """
    if num_luts < 0 or num_ios < 0:
        raise ValueError("block counts must be non-negative")
    side_logic = math.ceil(math.sqrt(max(num_luts, 1) / utilization))
    side_io = math.ceil(num_ios / (4 * io_capacity))
    side = max(side_logic, side_io, 2)
    return FPGAArchitecture(
        width=side,
        height=side,
        channel_width=channel_width,
        lut_inputs=lut_inputs,
        io_capacity=io_capacity,
    )
