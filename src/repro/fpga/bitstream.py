"""Configuration-memory and bitstream model.

Dynamic Circuit Specialization reconfigures the FPGA by *micro-reconfiguration*:
the frames of configuration memory that hold the truth-table bits of TLUTs
(and, on the hypothetical FPGA of the paper, the routing bits of TCONs) are
read, modified and written back through a configuration interface such as
HWICAP or MiCAP.  The cost of a specialization is therefore measured in
*configuration frames touched*.

This module models the configuration memory of the island FPGA:

* every tile (grid column x, row y) owns a fixed budget of configuration bits
  (LUT truth table, flip-flop init, connection-block and switch-block bits);
* bits are organized into fixed-size frames column by column, as on Xilinx
  devices, so touching one LUT dirties every frame that overlaps its tile.

The :class:`Bitstream` class holds actual configuration values so tests can
verify that two specializations differ exactly in the frames the cost model
predicts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Set, Tuple

from .architecture import FPGAArchitecture

__all__ = ["ConfigurationLayout", "Bitstream", "FrameSpan"]

#: Default frame size in bits; matches the 41 x 32-bit words of a Virtex-5/6
#: configuration frame, the devices used by the DCS papers the VCGRA work
#: builds on.
DEFAULT_FRAME_BITS = 41 * 32


@dataclass(frozen=True)
class FrameSpan:
    """The contiguous range of frames covering one tile's configuration bits."""

    first_frame: int
    last_frame: int

    def frames(self) -> range:
        return range(self.first_frame, self.last_frame + 1)

    @property
    def count(self) -> int:
        return self.last_frame - self.first_frame + 1


class ConfigurationLayout:
    """Mapping from FPGA tiles to configuration-memory frames."""

    def __init__(self, arch: FPGAArchitecture, frame_bits: int = DEFAULT_FRAME_BITS) -> None:
        if frame_bits < 8:
            raise ValueError("frame size is unrealistically small")
        self.arch = arch
        self.frame_bits = frame_bits

        w = arch.channel_width
        self.lut_bits = 1 << arch.lut_inputs
        self.ff_bits = 1
        # Connection-block bits: each of the LUT input pins can connect to any
        # of the adjacent tracks it reaches; the output pin likewise.
        cb_in_bits = arch.lut_inputs * max(1, int(round(w * arch.fc_in))) * 4
        cb_out_bits = max(1, int(round(w * arch.fc_out))) * 4
        # Switch-block bits: disjoint switch block has 6 programmable pairs per track.
        sb_bits = 6 * w
        self.routing_bits = cb_in_bits + cb_out_bits + sb_bits
        self.tile_bits = self.lut_bits + self.ff_bits + self.routing_bits

        #: bits per column of tiles (logic rows only; IO configuration is tiny
        #: and folded into the same budget)
        self.column_bits = self.tile_bits * arch.height
        self.frames_per_column = max(1, math.ceil(self.column_bits / self.frame_bits))

    # -- frame geometry ---------------------------------------------------------

    @property
    def total_frames(self) -> int:
        return self.frames_per_column * self.arch.width

    def tile_bit_offset(self, x: int, y: int) -> int:
        """Offset of tile (x, y)'s first configuration bit inside its column."""
        if not self.arch.contains_clb(x, y):
            raise ValueError(f"({x}, {y}) is not a logic tile")
        return (y - 1) * self.tile_bits

    def frames_for_tile(self, x: int, y: int) -> FrameSpan:
        """Frames that contain any configuration bit of tile (x, y)."""
        start_bit = self.tile_bit_offset(x, y)
        end_bit = start_bit + self.tile_bits - 1
        base = (x - 1) * self.frames_per_column
        return FrameSpan(base + start_bit // self.frame_bits, base + end_bit // self.frame_bits)

    def frames_for_tiles(self, tiles: Iterable[Tuple[int, int]]) -> Set[int]:
        """Union of frames touched by a set of tiles (deduplicated)."""
        frames: Set[int] = set()
        for x, y in tiles:
            frames.update(self.frames_for_tile(x, y).frames())
        return frames

    def lut_bit_range(self, x: int, y: int) -> Tuple[int, int]:
        """Global bit offsets [start, end) of the LUT truth-table bits of a tile."""
        column_start = (x - 1) * self.frames_per_column * self.frame_bits
        start = column_start + self.tile_bit_offset(x, y)
        return start, start + self.lut_bits


class Bitstream:
    """Concrete configuration values for an island FPGA.

    Only the pieces the reproduction needs are modelled: per-tile LUT truth
    tables and per-tile routing bits.  The class supports frame-level diffing,
    which is what the micro-reconfiguration cost model is built on.
    """

    def __init__(self, layout: ConfigurationLayout) -> None:
        self.layout = layout
        self.lut_configs: Dict[Tuple[int, int], int] = {}
        self.routing_configs: Dict[Tuple[int, int], int] = {}

    def set_lut_config(self, x: int, y: int, truth_table_bits: int) -> None:
        """Program the truth table of the LUT in tile (x, y)."""
        if truth_table_bits >> self.layout.lut_bits:
            raise ValueError("truth table wider than the physical LUT")
        if not self.layout.arch.contains_clb(x, y):
            raise ValueError(f"({x}, {y}) is not a logic tile")
        self.lut_configs[(x, y)] = truth_table_bits

    def set_routing_config(self, x: int, y: int, routing_bits: int) -> None:
        """Program the routing (connection/switch block) bits owned by tile (x, y)."""
        if routing_bits >> self.layout.routing_bits:
            raise ValueError("routing configuration wider than the tile's budget")
        if not self.layout.arch.contains_clb(x, y):
            raise ValueError(f"({x}, {y}) is not a logic tile")
        self.routing_configs[(x, y)] = routing_bits

    def clone(self) -> "Bitstream":
        other = Bitstream(self.layout)
        other.lut_configs = dict(self.lut_configs)
        other.routing_configs = dict(self.routing_configs)
        return other

    def configured_tiles(self) -> Set[Tuple[int, int]]:
        return set(self.lut_configs) | set(self.routing_configs)

    def diff_tiles(self, other: "Bitstream") -> Set[Tuple[int, int]]:
        """Tiles whose configuration differs between two bitstreams."""
        tiles = self.configured_tiles() | other.configured_tiles()
        changed = set()
        for tile in tiles:
            if self.lut_configs.get(tile, 0) != other.lut_configs.get(tile, 0):
                changed.add(tile)
            elif self.routing_configs.get(tile, 0) != other.routing_configs.get(tile, 0):
                changed.add(tile)
        return changed

    def diff_frames(self, other: "Bitstream") -> Set[int]:
        """Configuration frames that must be rewritten to go from ``other`` to ``self``."""
        return self.layout.frames_for_tiles(self.diff_tiles(other))

    def frame_image(self) -> Dict[int, int]:
        """Render the configuration into concrete frame contents.

        Returns a mapping ``frame id -> frame bits`` holding every *nonzero*
        frame of the device's configuration memory; absent frames are
        all-zero by definition, so two images are bit-identical iff the
        dicts are equal.  Each tile's bits are packed at its
        :meth:`~ConfigurationLayout.tile_bit_offset` inside its column --
        LUT truth table first, then the flip-flop init bit, then the
        routing bits -- and the column bit string is sliced into
        ``frame_bits``-sized frames, exactly the geometry
        :meth:`ConfigurationLayout.frames_for_tile` describes.

        This is the ground truth the frame-level delta encoding of
        :mod:`repro.reconfig.frames` diffs and patches: a frame whose
        content is equal between two configurations never needs to be
        written, even when :meth:`diff_frames` (which is geometric, not
        content-aware) would conservatively include it.
        """
        layout = self.layout
        ff_shift = layout.lut_bits + layout.ff_bits
        columns: Dict[int, int] = {}
        for (x, y) in self.configured_tiles():
            tile_val = self.lut_configs.get((x, y), 0) | (
                self.routing_configs.get((x, y), 0) << ff_shift
            )
            if tile_val:
                columns[x] = columns.get(x, 0) | (tile_val << self.layout.tile_bit_offset(x, y))
        mask = (1 << layout.frame_bits) - 1
        image: Dict[int, int] = {}
        for x, column in columns.items():
            base = (x - 1) * layout.frames_per_column
            index = 0
            while column:
                word = column & mask
                if word:
                    image[base + index] = word
                column >>= layout.frame_bits
                index += 1
        return image
