"""VPR-style island FPGA model: architecture, routing graph, configuration memory."""

from .architecture import FPGAArchitecture, Site, auto_size
from .bitstream import Bitstream, ConfigurationLayout, FrameSpan
from .device import Device, build_device, device_for_netlist
from .routing_graph import RRGraph, RRNodeType, build_rr_graph

__all__ = [
    "FPGAArchitecture",
    "Site",
    "auto_size",
    "Bitstream",
    "ConfigurationLayout",
    "FrameSpan",
    "Device",
    "build_device",
    "device_for_netlist",
    "RRGraph",
    "RRNodeType",
    "build_rr_graph",
]
