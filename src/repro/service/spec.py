"""Job specifications and the worker-side job executor.

A *job* is one complete synthesis -> technology-mapping -> place-and-route
-> bitstream flow, described entirely by JSON-able data so it can cross the
wire, the journal and the process-pool boundary unchanged.  Two derived
content hashes organize the service around it:

* :meth:`JobSpec.job_key` -- the coalescing / result-reuse key.  Like the
  :class:`repro.par.cache.PaRCache` keys it fingerprints every semantic
  input *plus* the kernel algorithm versions, so a kernel change that
  invalidates cached routes also invalidates coalesced result reuse --
  the two tiers can never disagree about what "the same job" means.
* :meth:`JobSpec.class_key` -- the circuit-defining subset only (format,
  topology knobs, mapping flow), used by the circuit breaker: a circuit
  that keeps failing trips the breaker for every seed/width variant of
  itself, not for unrelated work.

The invariant that makes the whole daemon testable lives here too:
:func:`execute_job` (run inside pool workers) and a direct
:func:`~repro.par.flow.place_and_route` call in any other process must
produce **bit-identical results** -- same placement sites, same routed node
sets, same rendered configuration frames -- crashes, retries and journal
replays included.  :func:`result_digest` canonicalizes exactly those three
layers into one SHA-256 so the invariant is a string compare
(``tests/test_service.py``, ``benchmarks/bench_service_throughput.py``).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, Optional

from ..util.resilience import Deadline, FaultInjected, inject

__all__ = [
    "SERVICE_VERSION",
    "JobSpec",
    "result_digest",
    "execute_job",
    "canonical_dumps",
]

#: Bump when the job payload format or the executor's semantics change in a
#: way that makes an old journal/result table meaningless.
SERVICE_VERSION = 1


def canonical_dumps(obj: Any) -> str:
    """Deterministic JSON text: sorted keys, no whitespace.

    This is the one encoding shared by job keys, result digests and the
    journal -- anything that must hash or compare stably across processes.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class JobSpec:
    """One service job: a PE circuit family member plus its flow knobs.

    ``kind`` names the circuit family; ``"pe"`` (the paper's Processing
    Element, elaborated from :class:`repro.core.pe.ProcessingElementSpec`)
    is the only family today, but the field keeps journals and clients
    forward-compatible with new families.
    """

    # -- circuit-defining fields (fold into class_key) ----------------------
    kind: str = "pe"
    we: int = 5                        #: FloPoCo exponent width
    wf: int = 10                       #: FloPoCo mantissa width
    num_inputs: int = 4
    counter_width: int = 16
    include_intra_connect: bool = True
    include_counter: bool = True
    parameterized: bool = True         #: TCONMAP flow vs conventional LUT map
    # -- flow knobs (fold into job_key only) --------------------------------
    channel_width: int = 12
    placement_effort: float = 0.5
    router_iterations: int = 20
    seed: int = 0
    objective: str = "wirelength"
    #: per-job wall-clock budget override; ``None`` = the daemon's default.
    deadline_s: Optional[float] = None

    _CLASS_FIELDS = (
        "kind", "we", "wf", "num_inputs", "counter_width",
        "include_intra_connect", "include_counter", "parameterized",
    )

    def __post_init__(self) -> None:
        if self.kind != "pe":
            raise ValueError(f"unknown job kind {self.kind!r}")
        if self.objective not in ("wirelength", "timing"):
            raise ValueError(f"unknown objective {self.objective!r}")
        if self.we < 2 or self.wf < 2:
            raise ValueError("degenerate floating-point format")
        if self.channel_width < 2:
            raise ValueError("channel width below the routable minimum")
        if self.deadline_s is not None and self.deadline_s < 0:
            raise ValueError("deadline must be >= 0")

    # -- wire format --------------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """Plain JSON-able dict (the journal / protocol representation)."""
        return asdict(self)

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "JobSpec":
        """Parse and validate a payload; unknown keys fail loud.

        Silent key-dropping would make a typo'd knob coalesce with the
        default-knob job -- a wrong-result bug, not a convenience.
        """
        if not isinstance(payload, dict):
            raise ValueError(f"job spec must be an object, got {type(payload).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown job spec field(s): {sorted(unknown)}")
        return cls(**payload)

    # -- content keys -------------------------------------------------------

    def job_key(self) -> str:
        """Coalescing key: full semantic fingerprint + algorithm versions."""
        from ..par.cache import PLACE_ALGO_VERSION, ROUTE_ALGO_VERSION

        material = "|".join(
            (
                f"service-v{SERVICE_VERSION}",
                f"route-v{ROUTE_ALGO_VERSION}",
                f"place-v{PLACE_ALGO_VERSION}",
                canonical_dumps(self.to_payload()),
            )
        )
        return "job-" + hashlib.sha256(material.encode()).hexdigest()[:32]

    def class_key(self) -> str:
        """Breaker key: the circuit-defining fields only."""
        payload = self.to_payload()
        material = canonical_dumps({k: payload[k] for k in self._CLASS_FIELDS})
        return "class-" + hashlib.sha256(material.encode()).hexdigest()[:16]


# ---------------------------------------------------------------------------
# Worker-side execution
# ---------------------------------------------------------------------------

#: Per-worker warm front end: (class_key, parameterized) -> MappedNetwork.
#: Synthesis + technology mapping are deterministic per circuit, so a worker
#: that has seen a job class before skips straight to PAR -- the "near-hit"
#: tier of the mixed workload (same circuit, new seed/width) pays only the
#: physical flow.  Bounded: job classes are few and networks are small.
_NETWORK_MEMO: Dict[str, Any] = {}


def _mapped_network(spec: JobSpec):
    """Synthesize + map the spec's circuit, memoized per worker process."""
    memo_key = spec.class_key()
    network = _NETWORK_MEMO.get(memo_key)
    if network is not None:
        return network

    from ..core.pe import ProcessingElementSpec, build_pe_design
    from ..flopoco.format import FPFormat
    from ..synth.synthesis import synthesize
    from ..techmap.lutmap import map_conventional
    from ..techmap.tconmap import map_parameterized

    pe = ProcessingElementSpec(
        fmt=FPFormat(we=spec.we, wf=spec.wf),
        num_inputs=spec.num_inputs,
        counter_width=spec.counter_width,
        include_intra_connect=spec.include_intra_connect,
        include_counter=spec.include_counter,
    )
    circuit = build_pe_design(pe).circuit
    synth = synthesize(circuit)
    network = (
        map_parameterized(synth.circuit)
        if spec.parameterized
        else map_conventional(synth.circuit)
    )
    _NETWORK_MEMO[memo_key] = network
    return network


def result_digest(par) -> str:
    """SHA-256 over every bit-level layer of one PaR outcome.

    Covers the placement sites, the per-net routed node *sets* (sorted --
    cache re-hydration reorders emission order by contract, see
    ``tests/test_property_fuzz.py``) and the rendered configuration frame
    image.  Two results with equal digests are bit-identical at every layer
    the service promises.
    """
    from ..reconfig.context import render_context_bitstream

    image = render_context_bitstream(par).frame_image()
    placement = par.placement.placement
    material = {
        "sites": {
            str(bid): [s.x, s.y, s.kind, s.subtile]
            for bid, s in sorted(placement.block_site.items())
        },
        "routes": {
            str(net): sorted(r.nodes) for net, r in par.routing.routes.items()
        },
        "frames": {str(fid): hex(val) for fid, val in sorted(image.items())},
        "wirelength": par.wirelength,
    }
    return hashlib.sha256(canonical_dumps(material).encode()).hexdigest()


def execute_job(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one job to completion; the pool worker entry point.

    Deterministic for a fixed payload: seeds are explicit, kernels are
    bit-identical across backends, and the warm-network memo caches a
    deterministic front end -- so a retried, crashed-and-resubmitted or
    journal-replayed job returns the same digest as a fresh direct call.

    The ``service.exec`` fault point sits here (kinds: ``crash`` -- hard
    worker death the parent sees as ``BrokenProcessPool`` -- and ``error``,
    a :class:`FaultInjected` the supervisor retries).  Raises
    ``RuntimeError`` when the design does not route at the requested width;
    that is a *job* failure (the breaker's food), never a worker failure.
    """
    from ..obs.trace import span
    from ..par.flow import place_and_route

    fault = inject("service.exec")
    if fault == "crash":
        # Simulated hard worker death: kills the process without unwinding,
        # which the parent sees as a BrokenProcessPool.
        os._exit(13)
    if fault is not None:
        raise FaultInjected("service.exec", kind=fault)

    spec = JobSpec.from_payload(payload)
    deadline = Deadline(spec.deadline_s)
    with span("service.exec", key=spec.job_key()):
        network = _mapped_network(spec)
        deadline.check("service front end")
        remaining = deadline.remaining()
        par = place_and_route(
            network,
            channel_width=spec.channel_width,
            placement_effort=spec.placement_effort,
            router_iterations=spec.router_iterations,
            seed=spec.seed,
            objective=spec.objective,
            route_deadline_s=None if remaining == float("inf") else remaining,
        )
        if not par.routing.success:
            raise RuntimeError(
                f"design does not route at W={spec.channel_width} "
                f"(seed {spec.seed})"
            )
        digest = result_digest(par)

    summary = par.summary()
    return {
        "job_key": spec.job_key(),
        "digest": digest,
        "wirelength": int(par.wirelength),
        "critical_path_ns": float(par.timing.critical_path_ns),
        "logic_depth": int(par.logic_depth),
        "channel_width": int(par.device.arch.channel_width),
        "array_side": int(par.device.arch.width),
        "routed": bool(par.routing.success),
        "objective": par.objective,
        "luts": int(summary["luts"]),
        "tluts": int(summary["tluts"]),
        "tcons": int(summary["tcons"]),
        #: recovery provenance: faults the *flow* absorbed while producing
        #: this (still bit-identical) result -- cache fallbacks, degraded
        #: kernels.  Empty on a fault-free run.
        "events": list(par.events),
        "worker_pid": os.getpid(),
    }
