"""Crash-consistent job journal: accepted jobs survive a daemon restart.

One JSON file per job (``job-<id>.json``), rewritten *atomically* (temp +
``os.replace``, the :class:`repro.par.cache.LocalDirBackend` idiom) at every
state transition -- so any file the replay scan finds is a complete,
parseable snapshot of one job at some point in its life, never a torn
write.  The encoding is :func:`repro.service.spec.canonical_dumps`: plain
JSON with sorted keys, the same canonical form the job keys and result
digests hash -- what the journal stores is exactly what the service hashed.

Entry schema (all JSON-able)::

    {"id": str, "key": str, "class": str, "spec": {...},      # identity
     "state": "accepted" | "running" | "completed" | "failed",
     "attempts": int, "submitted_ts": float, "updated_ts": float,
     "seq": int,                                              # id counter
     "result": {...}?,                                        # completed
     "error": str?}                                           # failed

Replay semantics (:meth:`JobJournal.replay`): ``accepted`` and ``running``
entries are the daemon's debt -- jobs the service said yes to but never
finished -- and are re-queued; ``completed`` entries re-seed the result
table (their results serve duplicate submissions without recompute);
``failed`` entries are kept for status queries only.  A corrupt entry is
absorbed -- counted, reported as a ``journal-corrupt-entry`` recovery
event, never fatal -- because a journal that refuses to replay after a
crash is worse than one missing a job.  The ``service.journal`` fault
point covers the write path (kind ``io``); dropped journal writes degrade
durability, never availability, mirroring the cache's absorb-and-count
contract.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..obs import metrics as obs_metrics
from ..util.resilience import inject, record_event
from .spec import canonical_dumps

__all__ = ["JobJournal"]

#: States a replay re-queues: accepted-but-unfinished work is never lost.
_PENDING_STATES = ("accepted", "running")


class JobJournal:
    """Directory-backed journal with atomic per-job snapshot writes."""

    def __init__(self, directory: Union[str, Path]) -> None:
        """Create (if needed) and wrap ``directory``."""
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.writes = 0
        self.dropped_writes = 0
        self.corrupt_entries = 0

    def _path(self, job_id: str) -> Path:
        return self.directory / f"job-{job_id}.json"

    # -- write path ---------------------------------------------------------

    def record(
        self,
        entry: Dict[str, Any],
        events: Optional[List[Dict[str, Any]]] = None,
    ) -> bool:
        """Atomically persist one job snapshot; ``False`` if dropped.

        A failed write (full disk, unwritable directory, injected
        ``service.journal`` fault) is absorbed: the daemon keeps serving
        from memory and the drop is counted in :meth:`stats` /
        ``service.journal_dropped_writes`` -- durability degrades,
        availability does not.
        """
        tmp = None
        try:
            fault = inject("service.journal")
            if fault is not None:
                raise OSError(
                    f"injected journal write fault ({fault}) for {entry.get('id')}"
                )
            fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(canonical_dumps(entry))
            os.replace(tmp, self._path(str(entry["id"])))
            self.writes += 1
            return True
        except OSError as exc:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            self.dropped_writes += 1
            obs_metrics.add("service.journal_dropped_writes")
            record_event(
                events,
                "journal-write-dropped",
                site="service.journal",
                job=entry.get("id"),
                error=f"{type(exc).__name__}: {exc}",
            )
            return False

    # -- read / replay path -------------------------------------------------

    def load(self, job_id: str) -> Optional[Dict[str, Any]]:
        """One job's latest snapshot, or ``None`` (missing or corrupt)."""
        try:
            with open(self._path(job_id), "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    def entries(
        self, events: Optional[List[Dict[str, Any]]] = None
    ) -> List[Dict[str, Any]]:
        """Every readable snapshot, sorted by sequence number then id.

        Corrupt or truncated files are skipped and counted; each is
        reported once as a ``journal-corrupt-entry`` recovery event.
        """
        out: List[Dict[str, Any]] = []
        for path in sorted(self.directory.glob("job-*.json")):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    entry = json.load(fh)
                if not isinstance(entry, dict) or "id" not in entry:
                    raise ValueError("journal entry is not a job snapshot")
            except (OSError, ValueError) as exc:
                self.corrupt_entries += 1
                obs_metrics.add("service.journal_corrupt_entries")
                record_event(
                    events,
                    "journal-corrupt-entry",
                    site="service.journal",
                    file=path.name,
                    error=f"{type(exc).__name__}: {exc}",
                )
                continue
            out.append(entry)
        out.sort(key=lambda e: (e.get("seq", 0), str(e.get("id"))))
        return out

    def replay(
        self, events: Optional[List[Dict[str, Any]]] = None
    ) -> Dict[str, List[Dict[str, Any]]]:
        """Classify every entry for a restarting daemon.

        Returns ``{"pending": [...], "completed": [...], "failed": [...]}``;
        ``pending`` (accepted/running) must be re-queued, ``completed``
        re-seeds the result table, ``failed`` is kept for status queries.
        """
        out: Dict[str, List[Dict[str, Any]]] = {
            "pending": [],
            "completed": [],
            "failed": [],
        }
        for entry in self.entries(events=events):
            state = entry.get("state")
            if state in _PENDING_STATES:
                out["pending"].append(entry)
            elif state == "completed":
                out["completed"].append(entry)
            elif state == "failed":
                out["failed"].append(entry)
            else:
                self.corrupt_entries += 1
                record_event(
                    events,
                    "journal-corrupt-entry",
                    site="service.journal",
                    job=entry.get("id"),
                    error=f"unknown state {state!r}",
                )
        return out

    def prune_completed(self, keep: int) -> int:
        """Drop the oldest completed/failed snapshots beyond ``keep``.

        Pending entries are never pruned (they are the replay debt).
        Returns the number of files removed.
        """
        done = [
            e
            for e in self.entries()
            if e.get("state") in ("completed", "failed")
        ]
        removed = 0
        for entry in done[: max(0, len(done) - keep)]:
            try:
                os.unlink(self._path(str(entry["id"])))
                removed += 1
            except OSError:
                continue
        return removed

    def stats(self) -> Dict[str, int]:
        """Write/drop/corruption tallies (all zero on a healthy journal)."""
        return {
            "writes": self.writes,
            "dropped_writes": self.dropped_writes,
            "corrupt_entries": self.corrupt_entries,
        }
