"""JSON-lines TCP front end for the service daemon.

One request per line, one response per line, every payload a JSON object.
The protocol is deliberately tiny -- six operations, all mapped straight
onto :class:`~repro.service.daemon.ServiceDaemon` methods -- because the
interesting machinery (coalescing, backpressure, the breaker, the journal)
lives behind :meth:`ServiceDaemon.submit`, not in the transport:

    {"op": "ping"}                                  -> {"ok": true, "pong": true}
    {"op": "submit", "spec": {...}, "wait": true?}  -> admission response
    {"op": "status", "job": "<key>"}                -> lifecycle view
    {"op": "result", "job": "<key>"}                -> completed result
    {"op": "stats"}                                 -> health snapshot
    {"op": "shutdown"}                              -> drains and stops

``submit`` with ``"wait": true`` blocks (server-side, up to ``timeout``
seconds, default 300) until the job finishes and inlines the result --
the convenient mode for scripts; pollers use ``status``/``result``.
Malformed requests get a structured ``bad-request`` response on the same
line; a protocol error can never kill the connection handler, let alone
the daemon.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional

from .daemon import ServiceConfig, ServiceDaemon
from .spec import canonical_dumps

__all__ = ["ServiceServer", "serve"]

#: Default server-side wait bound for ``submit {"wait": true}`` requests.
_DEFAULT_WAIT_S = 300.0


class ServiceServer:
    """Asyncio TCP wrapper around one :class:`ServiceDaemon`."""

    def __init__(
        self,
        daemon: Optional[ServiceDaemon] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        """``port=0`` binds an ephemeral port (read it from ``self.port``)."""
        self.daemon = daemon or ServiceDaemon(ServiceConfig.from_env())
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown = asyncio.Event()

    async def start(self) -> int:
        """Replay the journal, start dispatchers, bind the socket."""
        await self.daemon.start()
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def serve_until_shutdown(self) -> None:
        """Run until a ``shutdown`` request (or :meth:`stop`) arrives."""
        await self._shutdown.wait()
        await self.stop()

    async def stop(self) -> None:
        """Close the listener and stop the daemon (journal stays on disk)."""
        self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.daemon.stop()

    # -- connection handling -------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = await self._dispatch(line)
                writer.write(canonical_dumps(response).encode() + b"\n")
                await writer.drain()
                if response.get("_close"):
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Server teardown cancels in-flight handlers; exiting quietly
            # (instead of propagating) keeps close() noise-free.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, line: bytes) -> Dict[str, Any]:
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            return {"ok": False, "error": "bad-request", "detail": str(exc)}
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "submit":
            return await self._submit(request)
        if op == "status":
            return self.daemon.status(str(request.get("job", "")))
        if op == "result":
            return self.daemon.result(str(request.get("job", "")))
        if op == "stats":
            return self.daemon.stats()
        if op == "shutdown":
            self._shutdown.set()
            return {"ok": True, "stopping": True, "_close": True}
        return {"ok": False, "error": "bad-request",
                "detail": f"unknown op {op!r}"}

    async def _submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        response = await self.daemon.submit(request.get("spec") or {})
        if not response.get("ok") or not request.get("wait"):
            return response
        key = response["job"]
        timeout = float(request.get("timeout") or _DEFAULT_WAIT_S)
        finished = await self.daemon.wait(key, timeout=timeout)
        if not finished:
            return {"ok": False, "error": "wait-timeout", "job": key,
                    "timeout_s": timeout}
        return self.daemon.result(key)


async def serve(
    config: Optional[ServiceConfig] = None,
    host: str = "127.0.0.1",
    port: int = 7341,
) -> None:
    """Blocking entry point for ``python -m repro.service``."""
    server = ServiceServer(
        ServiceDaemon(config or ServiceConfig.from_env()), host=host, port=port
    )
    bound = await server.start()
    print(f"repro.service listening on {server.host}:{bound} "
          f"(journal: {server.daemon.journal.directory})", flush=True)
    await server.serve_until_shutdown()
