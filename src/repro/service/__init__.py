"""Fault-tolerant PAR-as-a-service: a supervised job daemon over the flow.

The service turns :func:`repro.par.flow.place_and_route` into a long-lived
daemon without weakening its determinism: every completed job's result is
**bit-identical** to a direct ``place_and_route`` call with the same spec
-- through worker crashes, retries, watchdog kills and journal replays
(``tests/test_service.py`` enforces the invariant as a digest compare).

Layers, bottom up:

* :mod:`repro.service.spec`   -- :class:`JobSpec`, content keys, the
  worker-side :func:`execute_job`, :func:`result_digest`.
* :mod:`repro.service.pool`   -- :class:`SupervisedWorkerPool`: heartbeats,
  deadlines, restart-on-crash, bounded retries.
* :mod:`repro.service.journal`-- :class:`JobJournal`: crash-consistent
  atomic snapshots, replay-on-restart.
* :mod:`repro.service.daemon` -- :class:`ServiceDaemon`: admission
  (coalescing, breaker, backpressure) + dispatch + durability.
* :mod:`repro.service.server` / :mod:`repro.service.client` -- JSON-lines
  TCP front end and a small blocking client.

Run it: ``python -m repro.service`` (see :mod:`repro.service.__main__`).
Fault points ``service.exec`` / ``service.journal`` are documented in
``RESILIENCE.md``; ``SERVICE.md`` covers the job lifecycle end to end.
"""

from .client import ServiceClient
from .daemon import CircuitBreaker, ServiceConfig, ServiceDaemon
from .journal import JobJournal
from .pool import JobExecutionError, SupervisedWorkerPool
from .server import ServiceServer, serve
from .spec import (
    SERVICE_VERSION,
    JobSpec,
    canonical_dumps,
    execute_job,
    result_digest,
)

__all__ = [
    "SERVICE_VERSION",
    "JobSpec",
    "canonical_dumps",
    "execute_job",
    "result_digest",
    "JobJournal",
    "SupervisedWorkerPool",
    "JobExecutionError",
    "ServiceDaemon",
    "ServiceConfig",
    "CircuitBreaker",
    "ServiceClient",
    "ServiceServer",
    "serve",
]
