"""Command line entry point: ``python -m repro.service``.

Subcommands::

    serve                       run the daemon (default; ^C or the
                                ``shutdown`` op stops it)
    submit [--we N --wf N ...]  submit one job to a running daemon and
                                print the response (``--wait`` inlines
                                the result)
    stats                       print a running daemon's health snapshot
    ping                        liveness probe

Daemon tuning comes from ``REPRO_SERVICE_*`` environment variables (see
:mod:`repro.service.daemon`); ``--host``/``--port`` select the endpoint
for every subcommand.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from .client import ServiceClient
from .daemon import ServiceConfig
from .server import serve
from .spec import JobSpec


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Fault-tolerant PAR-as-a-service daemon and client.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7341)
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("serve", help="run the daemon (default)")
    sub.add_parser("stats", help="print daemon health snapshot")
    sub.add_parser("ping", help="liveness probe")
    submit = sub.add_parser("submit", help="submit one job")
    submit.add_argument("--we", type=int, default=JobSpec.we)
    submit.add_argument("--wf", type=int, default=JobSpec.wf)
    submit.add_argument("--num-inputs", type=int, default=JobSpec.num_inputs)
    submit.add_argument(
        "--counter-width", type=int, default=JobSpec.counter_width
    )
    submit.add_argument(
        "--conventional", action="store_true",
        help="conventional LUT mapping instead of the parameterized flow",
    )
    submit.add_argument(
        "--channel-width", type=int, default=JobSpec.channel_width
    )
    submit.add_argument(
        "--placement-effort", type=float, default=JobSpec.placement_effort
    )
    submit.add_argument(
        "--router-iterations", type=int, default=JobSpec.router_iterations
    )
    submit.add_argument("--seed", type=int, default=JobSpec.seed)
    submit.add_argument(
        "--objective", choices=("wirelength", "timing"),
        default=JobSpec.objective,
    )
    submit.add_argument("--deadline-s", type=float, default=None)
    submit.add_argument(
        "--wait", action="store_true", help="block for the inline result"
    )
    return parser


def main(argv=None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    command = args.command or "serve"
    if command == "serve":
        try:
            asyncio.run(
                serve(ServiceConfig.from_env(), host=args.host, port=args.port)
            )
        except KeyboardInterrupt:
            pass
        return 0
    with ServiceClient(host=args.host, port=args.port) as client:
        if command == "ping":
            response = client.ping()
        elif command == "stats":
            response = client.stats()
        else:
            spec = JobSpec(
                we=args.we,
                wf=args.wf,
                num_inputs=args.num_inputs,
                counter_width=args.counter_width,
                parameterized=not args.conventional,
                channel_width=args.channel_width,
                placement_effort=args.placement_effort,
                router_iterations=args.router_iterations,
                seed=args.seed,
                objective=args.objective,
                deadline_s=args.deadline_s,
            )
            response = client.submit(spec.to_payload(), wait=args.wait)
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0 if response.get("ok") else 1


if __name__ == "__main__":
    sys.exit(main())
