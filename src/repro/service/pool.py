"""Supervised process pool: the execution arm of the service daemon.

A :class:`SupervisedWorkerPool` wraps a ``concurrent.futures``
``ProcessPoolExecutor`` (forked, so workers inherit the installed fault
plan and the heartbeat channel) with the three behaviors a long-running
daemon needs that the raw executor does not have:

* **restart-on-crash** -- a worker that dies mid-job surfaces as
  ``BrokenProcessPool`` (the recovery idiom of the pool drivers in
  :mod:`repro.par.flow` / :mod:`repro.par.metrics`); the executor is
  rebuilt for subsequent jobs and -- exactly like those drivers' serial
  fallback -- the crashed job's remaining attempts run *in the parent
  process* (a thread), which a crash-prone environment that kills workers
  cannot touch.  Job execution is deterministic
  (:func:`repro.service.spec.execute_job`), so a recovered job is
  bit-identical to an undisturbed one.
* **per-job deadlines** -- the worker runs under a
  :class:`~repro.util.resilience.Deadline` threaded into the routing
  kernels, and the parent holds a grace-scaled watchdog on top: a worker
  that stops making progress past ``deadline * grace + slack`` is declared
  stuck, its processes are terminated, the pool is rebuilt, and the job is
  retried or failed -- a hung kernel can never wedge the queue.
* **heartbeats** -- workers report job start/finish over a fork-inherited
  queue; :meth:`SupervisedWorkerPool.liveness` exposes per-worker last-seen
  ages for the daemon's status endpoint, and a worker whose heartbeat
  predates the oldest allowed age is reported ``stale`` there long before
  the watchdog fires.

Failures the pool absorbs are reported as structured recovery events
(``pool-failure``, ``worker-stuck``, ``retry``) on the per-job events list
the daemon journals, and as ``service.worker_restarts`` /
``service.retries`` counters in the metrics registry.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import queue as queue_mod
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, List, Optional

from ..obs import metrics as obs_metrics
from ..util.resilience import ResilienceError, RetryPolicy, record_event
from .spec import execute_job

__all__ = ["JobExecutionError", "SupervisedWorkerPool"]

#: Extra parent-side watchdog seconds on top of the grace-scaled deadline,
#: covering worker spawn + result pickling on a loaded machine.
_WATCHDOG_SLACK_S = 5.0

#: Fork-inherited heartbeat channel (set in the parent before the executor
#: forks, read by every worker).  Module-global on purpose: executor
#: ``initargs`` are pickled, and multiprocessing queues only travel by
#: inheritance.
_HB_QUEUE: Optional[multiprocessing.queues.Queue] = None


def _pool_entry(job_id: str, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-side wrapper: heartbeat start/done around :func:`execute_job`."""
    _heartbeat("start", job_id)
    result = execute_job(payload)
    _heartbeat("done", job_id)
    return result


def _heartbeat(phase: str, job_id: str) -> None:
    hb = _HB_QUEUE
    if hb is None:
        return
    try:
        hb.put_nowait((os.getpid(), phase, job_id, time.time()))
    except Exception:
        # A full or torn-down heartbeat channel must never fail a job;
        # liveness degrades to watchdog-only supervision.
        pass


class JobExecutionError(RuntimeError):
    """A job failed permanently after the pool's bounded recovery.

    ``kind`` classifies the terminal cause: ``worker-crash`` (pool kept
    breaking), ``deadline`` (watchdog fired on every attempt), ``error``
    (the job itself raised).  The breaker counts these per job class.
    """

    def __init__(self, kind: str, message: str, attempts: int) -> None:
        super().__init__(message)
        self.kind = kind
        self.attempts = attempts


class SupervisedWorkerPool:
    """Forked process pool with heartbeats, deadlines and bounded retries."""

    def __init__(
        self,
        workers: int = 2,
        deadline_s: Optional[float] = 60.0,
        retry: Optional[RetryPolicy] = None,
        grace: float = 1.5,
    ) -> None:
        """``deadline_s`` is the default per-job budget (``None`` = none)."""
        if workers < 1:
            raise ValueError("pool needs at least one worker")
        self.workers = workers
        self.deadline_s = deadline_s
        self.retry = retry or RetryPolicy(attempts=2, backoff_s=0.05)
        self.grace = grace
        self.restarts = 0
        self._executor: Optional[ProcessPoolExecutor] = None
        self._liveness: Dict[int, Dict[str, Any]] = {}
        self._closed = False
        # One pool failure breaks *every* in-flight job's future at once, so
        # several jobs can reach the parent fallback together.  They must
        # not run together: execute_job leans on process-global warm caches
        # (front-end memo, search views) that are not thread-safe, and a
        # concurrent fallback would break the bit-identity contract.
        self._parent_lock = asyncio.Lock()

    # -- executor lifecycle --------------------------------------------------

    def _ensure_executor(self) -> ProcessPoolExecutor:
        global _HB_QUEUE
        if self._executor is None:
            ctx = multiprocessing.get_context("fork")
            if _HB_QUEUE is None:
                _HB_QUEUE = ctx.Queue()
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=ctx
            )
        return self._executor

    def _teardown_executor(self, kill: bool) -> None:
        executor = self._executor
        self._executor = None
        if executor is None:
            return
        if kill:
            # A stuck worker ignores shutdown(); terminate the processes so
            # the orphaned computation cannot outlive its job.
            for proc in list(getattr(executor, "_processes", {}).values()):
                try:
                    proc.terminate()
                except Exception:
                    pass
        executor.shutdown(wait=not kill, cancel_futures=True)

    def _restart(self, kill: bool = False) -> None:
        self._teardown_executor(kill=kill)
        self.restarts += 1
        obs_metrics.add("service.worker_restarts")
        self._ensure_executor()

    # -- heartbeats ----------------------------------------------------------

    def _drain_heartbeats(self) -> None:
        hb = _HB_QUEUE
        if hb is None:
            return
        while True:
            try:
                pid, phase, job_id, ts = hb.get_nowait()
            except (queue_mod.Empty, OSError, ValueError):
                return
            self._liveness[pid] = {"phase": phase, "job": job_id, "ts": ts}

    def liveness(self, stale_after_s: Optional[float] = None) -> Dict[str, Any]:
        """Per-worker last-heartbeat view for the status endpoint."""
        self._drain_heartbeats()
        now = time.time()
        stale_after_s = stale_after_s if stale_after_s is not None else (
            (self.deadline_s or 60.0) * self.grace
        )
        workers = {}
        for pid, last in self._liveness.items():
            age = now - last["ts"]
            workers[str(pid)] = {
                "phase": last["phase"],
                "job": last["job"],
                "age_s": round(age, 3),
                "stale": last["phase"] == "start" and age > stale_after_s,
            }
        return {"workers": workers, "restarts": self.restarts}

    # -- job execution -------------------------------------------------------

    async def run_job(
        self,
        job_id: str,
        payload: Dict[str, Any],
        deadline_s: Optional[float] = None,
        events: Optional[List[Dict[str, Any]]] = None,
    ) -> Dict[str, Any]:
        """Execute one job with supervision; returns the worker's result dict.

        Raises :class:`JobExecutionError` when the bounded recovery budget
        (``retry.attempts`` total tries) is exhausted or the job fails
        permanently.  Worker crashes and watchdog kills consume attempts
        exactly like job-level retryable errors, so a poisonous job cannot
        crash-loop the pool forever.
        """
        if self._closed:
            raise JobExecutionError("shutdown", "pool is shut down", 0)
        loop = asyncio.get_running_loop()
        budget = deadline_s if deadline_s is not None else self.deadline_s
        watchdog = (
            None if budget is None else budget * self.grace + _WATCHDOG_SLACK_S
        )
        backoffs = self.retry.backoffs()
        last_error: Optional[BaseException] = None
        kind = "error"
        in_parent = False
        for attempt in range(1, self.retry.attempts + 1):
            try:
                if in_parent:
                    # Serial fallback (the flow.py pool-driver idiom): after
                    # a worker crash the job finishes in the parent, immune
                    # to whatever keeps killing fresh workers — and strictly
                    # one job at a time (see _parent_lock).  The watchdog
                    # times the execution, not the wait for the lock.
                    async with self._parent_lock:
                        result = await asyncio.wait_for(
                            loop.run_in_executor(None, execute_job, payload),
                            timeout=watchdog,
                        )
                else:
                    executor = self._ensure_executor()
                    future = loop.run_in_executor(
                        executor, _pool_entry, job_id, payload
                    )
                    result = await asyncio.wait_for(future, timeout=watchdog)
                self._drain_heartbeats()
                return result
            except BrokenProcessPool as exc:
                # Hard worker death (os._exit, OOM-kill, segfault).
                kind, last_error = "worker-crash", exc
                record_event(
                    events, "pool-failure", site="service.exec", job=job_id,
                    attempt=attempt, error=f"{type(exc).__name__}: {exc}",
                )
                self._restart(kill=False)
                in_parent = True
            except asyncio.TimeoutError as exc:
                # The watchdog fired: the worker is stuck past its budget.
                kind, last_error = "deadline", exc
                record_event(
                    events, "worker-stuck", site="service.exec", job=job_id,
                    attempt=attempt, watchdog_s=watchdog,
                )
                self._restart(kill=True)
            except (ResilienceError, OSError) as exc:
                # Retryable job-level failure (injected error, transient IO).
                kind, last_error = "error", exc
                record_event(
                    events, "retry", site="service.exec", job=job_id,
                    attempt=attempt, error=type(exc).__name__,
                )
            except Exception as exc:
                # Permanent job failure (unroutable design, bad payload):
                # retrying a deterministic job cannot change the outcome.
                raise JobExecutionError(
                    "error", f"{type(exc).__name__}: {exc}", attempt
                ) from exc
            if attempt < self.retry.attempts:
                obs_metrics.add("service.retries")
                delay = next(backoffs)
                if delay > 0:
                    await asyncio.sleep(delay)
        raise JobExecutionError(
            kind,
            f"job failed after {self.retry.attempts} attempt(s): "
            f"{type(last_error).__name__}: {last_error}",
            self.retry.attempts,
        ) from last_error

    def shutdown(self) -> None:
        """Terminate the executor; the pool cannot be reused afterwards."""
        self._closed = True
        self._teardown_executor(kill=True)
