"""The PAR service daemon: supervised job queue with crash recovery.

:class:`ServiceDaemon` ties the service layers together around one
organizing principle -- *a fault anywhere degrades one job, never the
service*:

* **admission** (:meth:`ServiceDaemon.submit`) validates the spec, then
  checks -- in order -- the result table (duplicate of a finished job:
  served instantly), the active-job table (duplicate of an in-flight job:
  **coalesced** onto the same execution), the per-class circuit breaker
  (repeatedly-failing circuit families are rejected fast instead of
  burning workers), and the bounded queue (structured ``overloaded``
  rejection instead of unbounded latency).  Every rejection is a typed,
  countable response -- load shedding is an API, not an accident.
* **execution**: ``workers`` dispatcher coroutines drain the queue into a
  :class:`~repro.service.pool.SupervisedWorkerPool`, which owns crash
  restart, deadlines and bounded retries.
* **durability**: every state transition is journaled atomically
  (:class:`~repro.service.journal.JobJournal`); :meth:`start` replays the
  journal so accepted-but-unfinished jobs from a crashed daemon re-enter
  the queue and completed results survive restarts.

Coalescing and result reuse are sound because jobs are deterministic and
content-addressed (:meth:`repro.service.spec.JobSpec.job_key`): the job id
*is* the job key, so "the same job submitted twice" and "the same job
re-queued by replay" are literally the same journal entry.

Environment knobs (all optional, read by :meth:`ServiceConfig.from_env`)::

    REPRO_SERVICE_WORKERS             pool size            (default 2)
    REPRO_SERVICE_QUEUE_DEPTH         backpressure bound   (default 32)
    REPRO_SERVICE_DEADLINE_S          default job budget   (default 120)
    REPRO_SERVICE_RETRIES             attempts per job     (default 3)
    REPRO_SERVICE_BREAKER_THRESHOLD   failures to open     (default 3)
    REPRO_SERVICE_BREAKER_COOLDOWN_S  open -> half-open    (default 30)
    REPRO_SERVICE_JOURNAL_DIR         journal directory    (default .repro_service)
"""

from __future__ import annotations

import asyncio
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..obs import metrics as obs_metrics
from ..obs.trace import span
from ..util.resilience import RetryPolicy
from .journal import JobJournal
from .pool import JobExecutionError, SupervisedWorkerPool
from .spec import JobSpec

__all__ = ["ServiceConfig", "CircuitBreaker", "ServiceDaemon"]


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        return float(raw)
    except ValueError:
        return default


@dataclass(frozen=True)
class ServiceConfig:
    """Daemon tuning; every field has a ``REPRO_SERVICE_*`` env override."""

    workers: int = 2
    queue_depth: int = 32
    deadline_s: Optional[float] = 120.0
    retry_attempts: int = 3
    retry_backoff_s: float = 0.05
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 30.0
    grace: float = 1.5
    journal_dir: Union[str, Path] = ".repro_service"

    @classmethod
    def from_env(cls) -> "ServiceConfig":
        """Config from ``REPRO_SERVICE_*`` variables; unset -> defaults."""
        deadline = _env_float("REPRO_SERVICE_DEADLINE_S", 120.0)
        return cls(
            workers=int(_env_float("REPRO_SERVICE_WORKERS", 2)),
            queue_depth=int(_env_float("REPRO_SERVICE_QUEUE_DEPTH", 32)),
            deadline_s=None if deadline <= 0 else deadline,
            retry_attempts=int(_env_float("REPRO_SERVICE_RETRIES", 3)),
            breaker_threshold=int(
                _env_float("REPRO_SERVICE_BREAKER_THRESHOLD", 3)
            ),
            breaker_cooldown_s=_env_float("REPRO_SERVICE_BREAKER_COOLDOWN_S", 30.0),
            journal_dir=os.environ.get(
                "REPRO_SERVICE_JOURNAL_DIR", ".repro_service"
            ),
        )


class CircuitBreaker:
    """Per-job-class consecutive-failure breaker with half-open probes.

    ``threshold`` consecutive failures of one class (same circuit family,
    any seed/width -- :meth:`~repro.service.spec.JobSpec.class_key`) open
    the circuit: further submissions of that class are rejected instantly
    for ``cooldown_s``.  After the cooldown one *probe* job is admitted
    (half-open); its outcome closes or re-opens the circuit.  Other job
    classes are never affected -- a poisonous circuit cannot starve the
    queue for everyone else.
    """

    def __init__(self, threshold: int = 3, cooldown_s: float = 30.0) -> None:
        """``threshold`` consecutive failures open; probe after ``cooldown_s``."""
        self.threshold = max(1, threshold)
        self.cooldown_s = cooldown_s
        self._failures: Dict[str, int] = {}
        self._opened_at: Dict[str, float] = {}
        self._probing: Dict[str, bool] = {}
        self.opens = 0

    def allow(self, class_key: str) -> bool:
        """May a job of this class be admitted right now?"""
        opened_at = self._opened_at.get(class_key)
        if opened_at is None:
            return True
        if time.monotonic() - opened_at < self.cooldown_s:
            return False
        # Cooled down: admit exactly one probe until it resolves.
        if self._probing.get(class_key):
            return False
        self._probing[class_key] = True
        return True

    def record_success(self, class_key: str) -> None:
        """Close the circuit (probe succeeded / class is healthy)."""
        self._failures.pop(class_key, None)
        self._opened_at.pop(class_key, None)
        self._probing.pop(class_key, None)

    def record_failure(self, class_key: str) -> None:
        """Count one failure; open the circuit at the threshold."""
        if self._probing.pop(class_key, None):
            # Failed probe: restart the cooldown clock.
            self._opened_at[class_key] = time.monotonic()
            return
        count = self._failures.get(class_key, 0) + 1
        self._failures[class_key] = count
        if count >= self.threshold and class_key not in self._opened_at:
            self._opened_at[class_key] = time.monotonic()
            self.opens += 1
            obs_metrics.add("service.breaker_opens")

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able view for the stats endpoint."""
        return {
            "open": sorted(self._opened_at),
            "failures": dict(self._failures),
            "opens": self.opens,
        }


@dataclass
class _Job:
    """Daemon-side state for one unique job (id == content key)."""

    key: str
    class_key: str
    payload: Dict[str, Any]
    state: str = "accepted"
    attempts: int = 0
    seq: int = 0
    submitted_ts: float = 0.0
    updated_ts: float = 0.0
    waiters: int = 1                 #: submissions coalesced onto this run
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    events: List[Dict[str, Any]] = field(default_factory=list)
    done: asyncio.Event = field(default_factory=asyncio.Event)

    def entry(self) -> Dict[str, Any]:
        """The journal snapshot for the current state."""
        entry: Dict[str, Any] = {
            "id": self.key,
            "key": self.key,
            "class": self.class_key,
            "spec": self.payload,
            "state": self.state,
            "attempts": self.attempts,
            "submitted_ts": self.submitted_ts,
            "updated_ts": self.updated_ts,
            "seq": self.seq,
        }
        if self.result is not None:
            entry["result"] = self.result
        if self.error is not None:
            entry["error"] = self.error
        return entry


class ServiceDaemon:
    """Asyncio job daemon over the supervised PAR worker pool."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        """Build the daemon; call :meth:`start` before submitting."""
        self.config = config or ServiceConfig()
        self.journal = JobJournal(self.config.journal_dir)
        self.pool = SupervisedWorkerPool(
            workers=self.config.workers,
            deadline_s=self.config.deadline_s,
            retry=RetryPolicy(
                attempts=self.config.retry_attempts,
                backoff_s=self.config.retry_backoff_s,
            ),
            grace=self.config.grace,
        )
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            cooldown_s=self.config.breaker_cooldown_s,
        )
        self._jobs: Dict[str, _Job] = {}
        self._results: Dict[str, Dict[str, Any]] = {}
        self._queue: asyncio.Queue = asyncio.Queue()
        self._dispatchers: List[asyncio.Task] = []
        self._seq = 0
        self._started = False
        self.events: List[Dict[str, Any]] = []
        self.counts = {
            "submitted": 0, "completed": 0, "failed": 0, "coalesced": 0,
            "rejected_overload": 0, "rejected_breaker": 0,
            "rejected_bad_request": 0, "replayed": 0,
        }

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> Dict[str, int]:
        """Replay the journal, then start the dispatcher coroutines.

        Returns the replay tally (``{"pending": n, "completed": n, ...}``).
        Accepted-but-unfinished jobs from a previous daemon life re-enter
        the queue here -- the crash-recovery half of the service contract.
        """
        replay = self.journal.replay(events=self.events)
        for entry in replay["completed"]:
            result = entry.get("result")
            if isinstance(result, dict):
                self._results[str(entry["key"])] = result
            self._seq = max(self._seq, int(entry.get("seq", 0)))
        for entry in replay["failed"]:
            self._seq = max(self._seq, int(entry.get("seq", 0)))
        for entry in replay["pending"]:
            self._seq = max(self._seq, int(entry.get("seq", 0)))
            key = str(entry["key"])
            if key in self._jobs or key in self._results:
                continue
            job = _Job(
                key=key,
                class_key=str(entry.get("class", "")),
                payload=dict(entry.get("spec", {})),
                state="accepted",
                attempts=int(entry.get("attempts", 0)),
                seq=int(entry.get("seq", 0)),
                submitted_ts=float(entry.get("submitted_ts", 0.0)),
                updated_ts=time.time(),
            )
            self._jobs[key] = job
            self.journal.record(job.entry(), events=self.events)
            self._queue.put_nowait(job)
            self.counts["replayed"] += 1
            obs_metrics.add("service.jobs_replayed")
        self._dispatchers = [
            asyncio.ensure_future(self._dispatch_loop())
            for _ in range(self.config.workers)
        ]
        self._started = True
        self._gauge_depth()
        return {name: len(entries) for name, entries in replay.items()}

    async def stop(self) -> None:
        """Cancel dispatchers and tear down the pool (journal stays)."""
        self._started = False
        for task in self._dispatchers:
            task.cancel()
        for task in self._dispatchers:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._dispatchers = []
        self.pool.shutdown()

    def _gauge_depth(self) -> None:
        obs_metrics.gauge("service.queue_depth", self._queue.qsize())

    # -- admission -----------------------------------------------------------

    async def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Admit one job; always returns a structured response dict.

        Success: ``{"ok": True, "job": key, "state": ...}`` (state is
        ``completed`` when served from the result table, ``coalesced`` when
        attached to an in-flight duplicate, else ``accepted``).  Rejection:
        ``{"ok": False, "error": "bad-request" | "circuit-open" |
        "overloaded", ...}`` -- structured load shedding the client can
        distinguish and back off on.
        """
        with span("service.submit"):
            self.counts["submitted"] += 1
            obs_metrics.add("service.jobs_submitted")
            try:
                spec = JobSpec.from_payload(payload)
            except (TypeError, ValueError) as exc:
                self.counts["rejected_bad_request"] += 1
                obs_metrics.add("service.rejected_bad_request")
                return {"ok": False, "error": "bad-request", "detail": str(exc)}
            key = spec.job_key()
            class_key = spec.class_key()
            # 1. Finished already (this life or a replayed journal)?
            if key in self._results:
                self.counts["coalesced"] += 1
                obs_metrics.add("service.coalesced")
                return {"ok": True, "job": key, "state": "completed",
                        "coalesced": True}
            # 2. In flight? Attach, don't re-run.
            active = self._jobs.get(key)
            if active is not None and active.state in ("accepted", "running"):
                active.waiters += 1
                self.counts["coalesced"] += 1
                obs_metrics.add("service.coalesced")
                return {"ok": True, "job": key, "state": active.state,
                        "coalesced": True}
            # 3. Is this job class tripping the breaker?
            if not self.breaker.allow(class_key):
                self.counts["rejected_breaker"] += 1
                obs_metrics.add("service.rejected_breaker")
                return {"ok": False, "error": "circuit-open",
                        "job": key, "class": class_key,
                        "retry_after_s": self.config.breaker_cooldown_s}
            # 4. Room in the queue?
            if self._queue.qsize() >= self.config.queue_depth:
                self.counts["rejected_overload"] += 1
                obs_metrics.add("service.rejected_overload")
                return {"ok": False, "error": "overloaded",
                        "queue_depth": self._queue.qsize(),
                        "limit": self.config.queue_depth}
            self._seq += 1
            job = _Job(
                key=key,
                class_key=class_key,
                payload=spec.to_payload(),
                seq=self._seq,
                submitted_ts=time.time(),
                updated_ts=time.time(),
            )
            self._jobs[key] = job
            # Journal before enqueue: once we say "accepted", a crash must
            # not lose the job.
            self.journal.record(job.entry(), events=self.events)
            self._queue.put_nowait(job)
            self._gauge_depth()
            return {"ok": True, "job": key, "state": "accepted"}

    # -- execution -----------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            job = await self._queue.get()
            self._gauge_depth()
            try:
                await self._run_one(job)
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                # Supervisor-of-last-resort: a bug in the dispatch path
                # fails the one job, never the loop.
                self._finish_failed(job, f"dispatch error: {exc}")
            finally:
                self._queue.task_done()

    async def _run_one(self, job: _Job) -> None:
        job.state = "running"
        job.updated_ts = time.time()
        self.journal.record(job.entry(), events=self.events)
        spec = JobSpec.from_payload(job.payload)
        started = time.perf_counter()
        try:
            result = await self.pool.run_job(
                job.key,
                job.payload,
                deadline_s=(
                    spec.deadline_s if spec.deadline_s is not None
                    else self.config.deadline_s
                ),
                events=job.events,
            )
        except JobExecutionError as exc:
            job.attempts = exc.attempts
            self._finish_failed(job, f"{exc.kind}: {exc}")
            return
        latency_ms = (time.perf_counter() - started) * 1000.0
        job.state = "completed"
        job.result = result
        job.updated_ts = time.time()
        self._results[job.key] = result
        self.journal.record(job.entry(), events=self.events)
        self.breaker.record_success(job.class_key)
        self.counts["completed"] += 1
        obs_metrics.add("service.jobs_completed")
        obs_metrics.observe("service.latency_ms", latency_ms)
        job.done.set()

    def _finish_failed(self, job: _Job, error: str) -> None:
        job.state = "failed"
        job.error = error
        job.updated_ts = time.time()
        self.journal.record(job.entry(), events=self.events)
        self.breaker.record_failure(job.class_key)
        self.counts["failed"] += 1
        obs_metrics.add("service.jobs_failed")
        job.done.set()

    # -- queries -------------------------------------------------------------

    async def wait(self, key: str, timeout: Optional[float] = None) -> bool:
        """Block until job ``key`` finishes (``True``) or ``timeout``."""
        if key in self._results:
            return True
        job = self._jobs.get(key)
        if job is None:
            return False
        try:
            await asyncio.wait_for(job.done.wait(), timeout=timeout)
            return True
        except asyncio.TimeoutError:
            return False

    def status(self, key: str) -> Dict[str, Any]:
        """Lifecycle view of one job (memory first, then the journal)."""
        job = self._jobs.get(key)
        if job is not None:
            out = {"ok": True, "job": key, "state": job.state,
                   "attempts": job.attempts, "waiters": job.waiters,
                   "events": list(job.events)}
            if job.error is not None:
                out["error"] = job.error
            return out
        if key in self._results:
            return {"ok": True, "job": key, "state": "completed"}
        entry = self.journal.load(key)
        if entry is not None:
            return {"ok": True, "job": key, "state": entry.get("state"),
                    "attempts": entry.get("attempts", 0)}
        return {"ok": False, "error": "unknown-job", "job": key}

    def result(self, key: str) -> Dict[str, Any]:
        """The completed result for ``key``, or a structured miss."""
        result = self._results.get(key)
        if result is not None:
            return {"ok": True, "job": key, "result": result}
        status = self.status(key)
        if not status.get("ok"):
            return status
        return {"ok": False, "error": "not-ready", "job": key,
                "state": status.get("state")}

    def stats(self) -> Dict[str, Any]:
        """One JSON-able health snapshot: queue, pool, breaker, journal."""
        snap = obs_metrics.registry().snapshot()
        return {
            "ok": True,
            "queue_depth": self._queue.qsize(),
            "queue_limit": self.config.queue_depth,
            "counts": dict(self.counts),
            "pool": self.pool.liveness(),
            "breaker": self.breaker.snapshot(),
            "journal": self.journal.stats(),
            "latency_ms": snap["histograms"].get("service.latency_ms", {}),
            "events": len(self.events),
        }
