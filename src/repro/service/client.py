"""Minimal blocking client for the service daemon's JSON-lines protocol.

A :class:`ServiceClient` is a line-oriented socket wrapper: every method
sends one JSON object and returns the daemon's structured response dict
verbatim -- including rejections (``circuit-open``, ``overloaded``), which
are *responses*, not exceptions, so callers can implement their own
backoff.  Only transport-level failures (connection refused, torn socket)
raise.

Synchronous on purpose: the concurrency story lives in the daemon; a
client that submits and waits needs no event loop of its own.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Optional

__all__ = ["ServiceClient"]


class ServiceClient:
    """One connection to a running service daemon."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 7341, timeout: float = 600.0
    ) -> None:
        """Connect immediately; ``timeout`` bounds every round trip."""
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response round trip (the other methods sugar this)."""
        self._file.write(json.dumps(payload).encode() + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        return json.loads(line)

    def ping(self) -> Dict[str, Any]:
        """Liveness probe."""
        return self.request({"op": "ping"})

    def submit(
        self,
        spec: Dict[str, Any],
        wait: bool = False,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Submit one job spec; ``wait=True`` blocks for the inline result."""
        request: Dict[str, Any] = {"op": "submit", "spec": spec}
        if wait:
            request["wait"] = True
            if timeout is not None:
                request["timeout"] = timeout
        return self.request(request)

    def status(self, job: str) -> Dict[str, Any]:
        """Lifecycle view of one job."""
        return self.request({"op": "status", "job": job})

    def result(self, job: str) -> Dict[str, Any]:
        """Completed result of one job (structured miss when not ready)."""
        return self.request({"op": "result", "job": job})

    def stats(self) -> Dict[str, Any]:
        """Daemon health snapshot."""
        return self.request({"op": "stats"})

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to stop (it finishes the current jobs first)."""
        return self.request({"op": "shutdown"})

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._file.close()
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
