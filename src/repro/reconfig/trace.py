"""Request traces: skewed synthetic workloads and their replay.

Serving-style evaluation of the scheduler needs request streams, not single
switches.  :func:`synthetic_trace` draws a deterministic (seeded) stream of
context names with Zipf-skewed popularity -- a few hot contexts, a long
cold tail, like filter-coefficient batches hitting a video pipeline -- plus
an optional repeat probability modelling batch locality.  :func:`replay`
drives a :class:`~repro.reconfig.scheduler.ReconfigScheduler` through a
trace and folds the outcomes into a :class:`ReplayReport`: contexts/sec,
amortized switch cost, hit rate, and the full-vs-diff frame counts the
benchmark publishes.

Determinism: for a fixed ``(names, length, seed, skew, repeat)`` the trace
is reproducible across processes (NumPy PCG64), and scheduler replay is a
pure function of (library, budget, trace) -- replaying the same trace twice
from a fresh scheduler produces identical outcome sequences, evictions
included (asserted in ``tests/test_reconfig.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from .scheduler import ReconfigScheduler

__all__ = ["ReplayReport", "popularity_weights", "synthetic_trace", "replay"]


def popularity_weights(num_contexts: int, skew: float = 1.2) -> np.ndarray:
    """Zipf-like popularity: weight ``1 / rank**skew``, normalized to sum 1.

    Rank follows position (index 0 is the hottest context); ``skew=0`` is
    uniform traffic.
    """
    if num_contexts <= 0:
        raise ValueError("need at least one context")
    ranks = np.arange(1, num_contexts + 1, dtype=np.float64)
    weights = ranks ** (-float(skew))
    return weights / weights.sum()


def synthetic_trace(
    names: Sequence[str],
    length: int,
    seed: int = 0,
    skew: float = 1.2,
    repeat: float = 0.0,
) -> List[str]:
    """A seeded request trace over ``names`` with skewed popularity.

    ``names`` order is popularity order (first = hottest).  With
    probability ``repeat`` a request re-issues the previous context
    (batch locality -- the paper's "coefficients change once per 1000
    images" regime is ``repeat`` close to 1); otherwise the context is an
    independent draw from :func:`popularity_weights`.
    """
    if not 0.0 <= repeat <= 1.0:
        raise ValueError("repeat must be a probability")
    rng = np.random.Generator(np.random.PCG64(seed))
    weights = popularity_weights(len(names), skew=skew)
    draws = rng.choice(len(names), size=length, p=weights)
    if repeat:
        repeats = rng.random(length) < repeat
        trace: List[str] = []
        for i in range(length):
            if repeats[i] and trace:
                trace.append(trace[-1])
            else:
                trace.append(names[draws[i]])
        return trace
    return [names[i] for i in draws]


@dataclass(frozen=True)
class ReplayReport:
    """Aggregate outcome of replaying one trace through one scheduler."""

    requests: int
    total_time_ms: float
    hit_rate: float
    evictions: int
    rejected_admissions: int
    frames_written: int     #: total delta frames actually written
    frames_full: int        #: frames the full-reconfiguration baseline writes
    budget_frames: int

    @property
    def contexts_per_sec(self) -> float:
        """Modelled switch throughput over the whole trace."""
        if self.total_time_ms <= 0.0:
            return float("inf")
        return self.requests / (self.total_time_ms / 1000.0)

    @property
    def amortized_switch_ms(self) -> float:
        """Mean modelled cost of one request (diff switches + misses)."""
        return self.total_time_ms / self.requests if self.requests else 0.0

    @property
    def frame_savings(self) -> float:
        """Fraction of the full baseline's frame writes the diffs avoided."""
        if not self.frames_full:
            return 0.0
        return 1.0 - self.frames_written / self.frames_full

    def as_dict(self) -> Dict[str, float]:
        """Flat JSON-friendly view (benchmark report rows)."""
        return {
            "requests": self.requests,
            "budget_frames": self.budget_frames,
            "total_time_ms": self.total_time_ms,
            "contexts_per_sec": self.contexts_per_sec,
            "amortized_switch_ms": self.amortized_switch_ms,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "rejected_admissions": self.rejected_admissions,
            "frames_written": self.frames_written,
            "frames_full": self.frames_full,
            "frame_savings": self.frame_savings,
        }


def replay(scheduler: ReconfigScheduler, trace: Sequence[str]) -> ReplayReport:
    """Drive ``scheduler`` through ``trace`` and aggregate *its* outcomes.

    Only the switches of this replay are counted (the scheduler may carry
    warm state from earlier traffic -- that affects hit rates, not the
    accounting).
    """
    start = len(scheduler.history)
    for name in trace:
        scheduler.switch_to(name)
    outcomes = scheduler.history[start:]
    hits = sum(1 for o in outcomes if o.resident)
    return ReplayReport(
        requests=len(outcomes),
        total_time_ms=sum(o.time_ms for o in outcomes),
        hit_rate=hits / len(outcomes) if outcomes else 0.0,
        evictions=sum(len(o.evicted) for o in outcomes),
        rejected_admissions=sum(
            1 for o in outcomes if not o.resident and not o.admitted
        ),
        frames_written=sum(o.frames_written for o in outcomes),
        frames_full=sum(o.frames_full for o in outcomes),
        budget_frames=scheduler.budget_frames,
    )
