"""Multi-context reconfiguration scheduler: LRU residency + frame diffs.

The device model has two configuration stores:

* the **active plane** -- the frame image currently configuring the grid;
* a **context memory** of ``budget_frames`` frames holding *resident*
  partial configurations, staged so a switch to a resident context skips
  the read-modify legs of the configuration port
  (:meth:`~repro.core.reconfiguration.ReconfigurationCostModel.diff_switch_time_ms`).

Every switch writes exactly the frame-level delta between the active image
and the target (:func:`repro.reconfig.frames.diff_images`), so the active
plane after the switch is *bit-identical* to a full reconfiguration of the
target -- the invariant ``tests/test_reconfig.py`` and
``benchmarks/check_quality.py`` gate.

Residency is LRU with **criticality-aware admission**: a missing context is
admitted by evicting least-recently-used residents, but residents of
*strictly higher* criticality than the candidate are protected -- hot
contexts (frequently requested, or carrying timing-optimized placements)
keep their residency against cold traffic, while equal-criticality
contexts compete by plain LRU.  Eviction is deterministic:
recency order is insertion-ordered, ties never arise (each touch reorders
exactly one entry), and an admission either finds its full frame budget
among evictable residents or leaves the resident set untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.reconfiguration import MICAP, ReconfigurationCostModel
from ..obs import metrics as obs_metrics
from ..obs.trace import span
from .context import Context, ContextLibrary
from .frames import apply_delta, diff_images, union_frames

__all__ = ["SwitchOutcome", "ReconfigScheduler"]


@dataclass(frozen=True)
class SwitchOutcome:
    """Bookkeeping of one context switch."""

    name: str
    #: the target was resident in context memory (fast write path)
    resident: bool
    #: frames actually written (the delta against the active image)
    frames_written: int
    #: frames a full reconfiguration would have written (union of images)
    frames_full: int
    #: modelled switch time (delta frames at the taken path's per-frame cost)
    time_ms: float
    #: residents evicted to admit the target (empty on hits and refusals)
    evicted: Tuple[str, ...] = ()
    #: the target ended the switch resident in context memory
    admitted: bool = False


class ReconfigScheduler:
    """Multiplex a :class:`ContextLibrary` on one grid under a frame budget."""

    def __init__(
        self,
        library: ContextLibrary,
        budget_frames: int,
        model: Optional[ReconfigurationCostModel] = None,
    ) -> None:
        """``budget_frames`` bounds the context memory; ``model`` prices the
        per-frame write costs (defaults to MiCAP, the paper's fast port)."""
        if budget_frames < 0:
            raise ValueError("budget_frames must be non-negative")
        self.library = library
        self.budget_frames = budget_frames
        self.model = model or ReconfigurationCostModel(MICAP)
        #: active plane: canonical frame image currently on the grid
        self.active_image: Dict[int, int] = {}
        self.active_name: Optional[str] = None
        #: resident contexts, least-recently-used first (dicts preserve
        #: insertion order; a hit re-inserts at the MRU end)
        self._resident: Dict[str, int] = {}
        self.history: List[SwitchOutcome] = []
        self._stats = {
            "switches": 0,
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "rejected_admissions": 0,
            "frames_written": 0,
            "frames_full": 0,
            "time_ms": 0.0,
        }

    # -- residency ---------------------------------------------------------------

    @property
    def resident_names(self) -> List[str]:
        """Resident context names, least-recently-used first."""
        return list(self._resident)

    @property
    def resident_frames(self) -> int:
        """Context-memory frames currently in use (never exceeds the budget)."""
        return sum(self._resident.values())

    def _touch(self, name: str) -> None:
        """Move ``name`` to the MRU end of the resident order."""
        self._resident[name] = self._resident.pop(name)

    def _admit(self, context: Context) -> Tuple[Tuple[str, ...], bool]:
        """Try to make ``context`` resident; returns (evicted names, admitted).

        Two-phase and deterministic: first *plan* the evictions by scanning
        residents LRU-first, skipping any strictly hotter than the
        candidate; only when the plan frees enough frames is it committed.
        A refused admission changes nothing.
        """
        need = context.num_frames
        if need > self.budget_frames:
            return (), False
        free = self.budget_frames - self.resident_frames
        if free >= need:
            self._resident[context.name] = need
            return (), True
        plan: List[str] = []
        for name in self._resident:
            if free >= need:
                break
            if self.library[name].criticality > context.criticality:
                continue
            plan.append(name)
            free += self._resident[name]
        if free < need:
            return (), False
        for name in plan:
            del self._resident[name]
        self._resident[context.name] = need
        return tuple(plan), True

    # -- switching ---------------------------------------------------------------

    def switch_to(self, name: str) -> SwitchOutcome:
        """Reconfigure the grid to context ``name`` by writing its frame delta.

        A resident target pays the write-only context-memory cost per
        changed frame; a missing target streams its delta through the full
        RMW cycle of the configuration port and is then considered for
        admission.  Either way the active plane ends bit-identical to the
        target's full image.
        """
        context = self.library[name]
        with span("reconfig.switch", context=name):
            return self._switch_to(name, context)

    def _switch_to(self, name: str, context: Context) -> SwitchOutcome:
        delta = diff_images(self.active_image, context.image)
        frames_full = union_frames(self.active_image, context.image)
        resident = name in self._resident

        evicted: Tuple[str, ...] = ()
        admitted = resident
        if resident:
            self._touch(name)
        else:
            evicted, admitted = self._admit(context)

        time_ms = self.model.diff_switch_time_ms(delta.num_frames, resident=resident)
        self.active_image = apply_delta(self.active_image, delta)
        self.active_name = name

        outcome = SwitchOutcome(
            name=name,
            resident=resident,
            frames_written=delta.num_frames,
            frames_full=frames_full,
            time_ms=time_ms,
            evicted=evicted,
            admitted=admitted,
        )
        self.history.append(outcome)
        s = self._stats
        s["switches"] += 1
        s["hits" if resident else "misses"] += 1
        s["evictions"] += len(evicted)
        if not resident and not admitted:
            s["rejected_admissions"] += 1
        s["frames_written"] += delta.num_frames
        s["frames_full"] += frames_full
        s["time_ms"] += time_ms
        obs_metrics.merge(
            {
                "reconfig.switches": 1,
                "reconfig.hits" if resident else "reconfig.misses": 1,
                "reconfig.evictions": len(evicted),
                "reconfig.frames_written": delta.num_frames,
            }
        )
        return outcome

    # -- reporting ---------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """Counter snapshot (cumulative over every :meth:`switch_to`)."""
        out = dict(self._stats)
        out["resident_contexts"] = len(self._resident)
        out["resident_frames"] = self.resident_frames
        if self._stats["switches"]:
            out["hit_rate"] = self._stats["hits"] / self._stats["switches"]
        else:
            out["hit_rate"] = 0.0
        if self._stats["frames_full"]:
            out["frame_savings"] = 1.0 - (
                self._stats["frames_written"] / self._stats["frames_full"]
            )
        else:
            out["frame_savings"] = 0.0
        return out

    def reset(self) -> None:
        """Clear the active plane, residency, history and counters."""
        self.__init__(self.library, self.budget_frames, self.model)
