"""Multi-context reconfiguration: frame diffs, residency, trace replay.

The paper's headline claim is fast micro-reconfiguration of one overlay;
this package scales it to *many* application contexts multiplexed on one
grid (see RECONFIGURATION.md):

* :mod:`.frames` -- frame-level delta encoding between configuration
  images, with the bit-identity invariant ``apply(base, diff) == target``;
* :mod:`.context` -- :class:`~repro.reconfig.context.Context` /
  :class:`~repro.reconfig.context.ContextLibrary` plus the full-design
  bitstream rendering of a placed-and-routed result;
* :mod:`.scheduler` -- the LRU + criticality-aware-admission scheduler
  over a bounded context memory;
* :mod:`.trace` -- seeded skewed request traces and replay reporting.

Context libraries are built from circuits by
:func:`repro.core.flows.build_context_library`, which routes every context
through :func:`repro.par.flow.cached_route` -- on a warm
:class:`~repro.par.cache.PaRCache` a context build re-hydrates its routed
forest from disk and skips routing entirely.
"""

from .context import Context, ContextLibrary, render_context_bitstream
from .frames import FrameDelta, apply_delta, diff_images, union_frames
from .scheduler import ReconfigScheduler, SwitchOutcome
from .trace import ReplayReport, popularity_weights, replay, synthetic_trace

__all__ = [
    "Context",
    "ContextLibrary",
    "render_context_bitstream",
    "FrameDelta",
    "diff_images",
    "apply_delta",
    "union_frames",
    "ReconfigScheduler",
    "SwitchOutcome",
    "ReplayReport",
    "popularity_weights",
    "synthetic_trace",
    "replay",
]
