"""Application contexts: named configurations sharing one grid.

A :class:`Context` is one application's complete configuration of the shared
device -- an FIR/retina stage, a FloPoCo variant, a fuzz-grown netlist --
reduced to its canonical frame image (see :mod:`repro.reconfig.frames`)
plus a *criticality* used by the scheduler's admission policy.  A
:class:`ContextLibrary` holds many contexts over one
:class:`~repro.fpga.bitstream.ConfigurationLayout`; all of them target the
same grid, which is what makes frame-level diffs between any two of them
meaningful.

:func:`render_context_bitstream` builds the full-design bitstream of a
placed-and-routed result: every placed logic block programs its LUT truth
table at its site, and every channel wire a net routes through sets one
deterministic switch bit in the routing budget of the tile it crosses.
The rendering is a *model* (the repo has no real device database), but it
is deterministic in the PaR result, so contexts that share placement and
routing share frames and contexts that differ only in a few truth tables
produce small diffs -- exactly the structure micro-reconfiguration
exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional

from ..fpga.bitstream import Bitstream, ConfigurationLayout
from ..par.flow import PaRResult
from .frames import diff_images

__all__ = ["Context", "ContextLibrary", "render_context_bitstream"]

#: Knuth multiplicative hash constant; spreads RR node ids over the
#: routing-bit positions of a tile deterministically (no PYTHONHASHSEED).
_MIX = 0x9E3779B1


@dataclass(frozen=True)
class Context:
    """One application context: a named frame image plus scheduling metadata."""

    name: str
    #: canonical frame image (``frame id -> nonzero frame bits``)
    image: Dict[int, int]
    #: admission priority: a resident context is only evicted for a
    #: candidate of equal or higher criticality, so hot (frequently
    #: requested or timing-critical) contexts keep their residency -- and
    #: with it the timing-optimized placement their frames encode.
    criticality: float = 0.0
    #: free-form provenance (critical path, wirelength, popularity weight)
    metadata: Dict[str, float] = field(default_factory=dict)

    @property
    def num_frames(self) -> int:
        """Number of nonzero frames this context configures."""
        return len(self.image)


class ContextLibrary:
    """Named contexts over one shared configuration layout."""

    def __init__(self, layout: ConfigurationLayout) -> None:
        """Create an empty library for ``layout`` (one grid, one frame space)."""
        self.layout = layout
        self._contexts: Dict[str, Context] = {}
        #: how the library was produced: :func:`repro.core.flows.
        #: build_context_library` stores the PaR-cache counters (hits,
        #: misses, hit_rate) of the build here; empty for hand-built
        #: libraries.
        self.build_stats: Dict[str, float] = {}

    def add(self, context: Context) -> Context:
        """Register ``context`` (names are unique; re-adding replaces)."""
        self._contexts[context.name] = context
        return context

    def add_bitstream(
        self,
        name: str,
        bitstream: Bitstream,
        criticality: float = 0.0,
        metadata: Optional[Mapping[str, float]] = None,
    ) -> Context:
        """Render ``bitstream`` into its frame image and register it."""
        if bitstream.layout is not self.layout and (
            bitstream.layout.total_frames != self.layout.total_frames
            or bitstream.layout.frame_bits != self.layout.frame_bits
        ):
            raise ValueError(
                f"context {name!r} targets a different configuration layout "
                f"than the library's grid"
            )
        return self.add(
            Context(
                name=name,
                image=bitstream.frame_image(),
                criticality=criticality,
                metadata=dict(metadata or {}),
            )
        )

    def __getitem__(self, name: str) -> Context:
        return self._contexts[name]

    def __contains__(self, name: str) -> bool:
        return name in self._contexts

    def __len__(self) -> int:
        return len(self._contexts)

    def __iter__(self) -> Iterator[Context]:
        return iter(self._contexts.values())

    def names(self) -> list:
        """Context names in registration order (the popularity order of
        :func:`repro.reconfig.trace.synthetic_trace`)."""
        return list(self._contexts)

    def total_frames(self) -> int:
        """Sum of every context's nonzero frame count (library footprint)."""
        return sum(c.num_frames for c in self)

    def mean_delta_frames(self) -> float:
        """Mean frames changed between *consecutive* contexts in name order.

        A cheap structure probe: compares each context against the previous
        one, which is what a round-robin schedule would pay per switch.
        """
        names = self.names()
        if len(names) < 2:
            return 0.0
        total = 0
        for a, b in zip(names, names[1:]):
            total += diff_images(self[a].image, self[b].image).num_frames
        return total / (len(names) - 1)


def render_context_bitstream(par: PaRResult) -> Bitstream:
    """Full-design bitstream of a placed-and-routed context.

    * every placed logic block with a mapped LUT/TLUT programs its truth
      table bits (masked to the physical LUT width) at its placement site;
    * every CHANX/CHANY RR node used by the routing sets one switch bit --
      position ``(node * _MIX) % routing_bits`` -- in the routing budget of
      the logic tile at the node's coordinates (border channels outside the
      logic region carry no modelled configuration).

    Deterministic in the PaR result: re-rendering the same result is
    bit-identical, and two contexts that share routes share routing bits.
    """
    layout = par.device.config_layout
    arch = layout.arch
    rr = par.device.rr_graph
    bitstream = Bitstream(layout)

    lut_mask = (1 << layout.lut_bits) - 1
    placement = par.placement.placement
    for block in par.netlist.blocks:
        if block.mapped_node is None or not block.needs_logic_site:
            continue
        node = par.network.nodes[block.mapped_node]
        if node.function is None:
            continue
        site = placement.block_site[block.id]
        bitstream.set_lut_config(site.x, site.y, node.function.bits & lut_mask)

    routing_bits: Dict[tuple, int] = {}
    for net_route in par.routing.routes.values():
        for rr_node in net_route.nodes:
            if not rr.is_wire(rr_node):
                continue
            x, y = int(rr.node_x[rr_node]), int(rr.node_y[rr_node])
            if not arch.contains_clb(x, y):
                continue
            bit = (rr_node * _MIX) % layout.routing_bits
            routing_bits[(x, y)] = routing_bits.get((x, y), 0) | (1 << bit)
    for (x, y), bits in routing_bits.items():
        bitstream.set_routing_config(x, y, bits)
    return bitstream
