"""Frame-level delta encoding between configuration images.

A *frame image* is the rendered content of a configuration: a mapping
``frame id -> frame bits`` holding every nonzero frame
(:meth:`repro.fpga.bitstream.Bitstream.frame_image`).  All-zero frames are
absent by construction, which makes the representation canonical: two
images are bit-identical iff the dicts are equal.

A :class:`FrameDelta` is the exact set of frame writes that turns one image
into another.  The invariant the whole reconfiguration scheduler rests on::

    apply_delta(base, diff_images(base, target)) == target

for *any* pair of images -- a diff-applied configuration is bit-identical
to a full reconfiguration (gated in ``benchmarks/check_quality.py`` and
``tests/test_reconfig.py``).  A delta write with value ``0`` clears a frame
the target does not configure, so switching between arbitrary contexts
never leaks stale frames.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

__all__ = ["FrameDelta", "diff_images", "apply_delta", "union_frames"]


@dataclass(frozen=True)
class FrameDelta:
    """Sorted, immutable list of ``(frame id, new content)`` writes."""

    writes: Tuple[Tuple[int, int], ...]

    @property
    def num_frames(self) -> int:
        """Number of frames this delta writes."""
        return len(self.writes)

    def __bool__(self) -> bool:
        return bool(self.writes)


def diff_images(base: Mapping[int, int], target: Mapping[int, int]) -> FrameDelta:
    """The exact frame writes that turn ``base`` into ``target``.

    Frames whose content is equal in both images are never written; frames
    configured only in ``base`` are written back to zero.  The writes are
    sorted by frame id, so the delta for a given image pair is
    deterministic regardless of dict insertion order.
    """
    writes = []
    for frame in base.keys() | target.keys():
        value = target.get(frame, 0)
        if base.get(frame, 0) != value:
            writes.append((frame, value))
    writes.sort()
    return FrameDelta(tuple(writes))


def apply_delta(base: Mapping[int, int], delta: FrameDelta) -> Dict[int, int]:
    """Patch ``base`` with ``delta``, returning the new canonical image.

    Zero-valued writes remove the frame from the image (the canonical form
    never stores all-zero frames), so ``apply_delta(a, diff_images(a, b))``
    compares equal to ``b`` with plain ``==``.
    """
    image = dict(base)
    for frame, value in delta.writes:
        if value:
            image[frame] = value
        else:
            image.pop(frame, None)
    return image


def union_frames(base: Mapping[int, int], target: Mapping[int, int]) -> int:
    """Frames a *full* reconfiguration from ``base`` to ``target`` writes.

    The full path cannot know which frames already hold the right bits: it
    writes every frame the target configures plus clears every frame only
    the base configured -- the union of both key sets.  This is the
    baseline the benchmark's full-vs-diff frame counts compare against.
    """
    return len(base.keys() | target.keys())
