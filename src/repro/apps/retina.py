"""Retinal vessel segmentation pipeline (Figure 5 of the paper).

Processing steps::

    input RGB -> [software] green channel, histogram equalization,
                 optic-disc removal, outer-region removal
              -> [hardware] Gaussian denoise (5x5 then 9x9)
              -> [hardware] matched filters (7 orientations, 16x16), max response
              -> [hardware] texture filtering (keeps lines of minimum thickness)
              -> threshold -> vessel mask

All hardware steps run either on the plain NumPy reference backend or on the
VCGRA functional simulator (``backend="vcgra"``), which exercises the same
MAC-chain configuration the paper accelerates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.grid import VCGRAArchitecture
from ..core.pe import ProcessingElementSpec
from ..flopoco.format import FPFormat
from .filters import (
    DEFAULT_ORIENTATIONS,
    convolve2d,
    gaussian_kernel,
    matched_filter_kernels,
    texture_kernel,
    threshold_image,
)
from .images import SyntheticFundus
from .mapping import VCGRAFilterEngine
from .preprocessing import preprocess

__all__ = ["SegmentationConfig", "SegmentationResult", "RetinalVesselSegmentation"]


@dataclass
class SegmentationConfig:
    """Tunable parameters of the pipeline (the paper's filter sizes by default)."""

    denoise_sizes: Tuple[int, ...] = (5, 9)
    matched_size: int = 16
    matched_sigma: float = 2.0
    orientations: int = DEFAULT_ORIENTATIONS
    texture_size: int = 9
    texture_thickness: float = 2.0
    threshold_percentile: float = 88.0
    #: "vcgra" runs every filter on the overlay simulator; "numpy" is the reference
    backend: str = "numpy"
    #: grid used by the VCGRA backend
    vcgra_rows: int = 4
    vcgra_cols: int = 4
    #: floating-point format of the overlay's PEs
    fmt: FPFormat = field(default_factory=lambda: FPFormat(we=6, wf=26))
    #: stride for overlay-backed filtering (>1 trades fidelity for speed)
    vcgra_stride: int = 1


@dataclass
class SegmentationResult:
    """Outputs and intermediates of one pipeline run."""

    preprocessed: np.ndarray
    denoised: np.ndarray
    matched_response: np.ndarray
    texture_response: np.ndarray
    vessel_mask: np.ndarray
    stage_seconds: Dict[str, float]
    backend: str

    def metrics(self, ground_truth: np.ndarray, fov: Optional[np.ndarray] = None) -> Dict[str, float]:
        """Segmentation quality against a ground-truth vessel mask."""
        gt = np.asarray(ground_truth, dtype=bool)
        pred = np.asarray(self.vessel_mask, dtype=bool)
        if fov is not None:
            region = np.asarray(fov, dtype=bool)
        else:
            region = np.ones_like(gt)
        tp = int(np.count_nonzero(pred & gt & region))
        tn = int(np.count_nonzero(~pred & ~gt & region))
        fp = int(np.count_nonzero(pred & ~gt & region))
        fn = int(np.count_nonzero(~pred & gt & region))
        total = max(1, tp + tn + fp + fn)
        sensitivity = tp / max(1, tp + fn)
        specificity = tn / max(1, tn + fp)
        dice = 2 * tp / max(1, 2 * tp + fp + fn)
        return {
            "accuracy": (tp + tn) / total,
            "sensitivity": sensitivity,
            "specificity": specificity,
            "dice": dice,
            "true_positives": tp,
            "false_positives": fp,
        }


class RetinalVesselSegmentation:
    """The full segmentation pipeline with pluggable filter backend."""

    def __init__(self, config: Optional[SegmentationConfig] = None) -> None:
        self.config = config or SegmentationConfig()
        if self.config.backend not in ("numpy", "vcgra"):
            raise ValueError("backend must be 'numpy' or 'vcgra'")
        self._engines: Dict[Tuple[int, ...], VCGRAFilterEngine] = {}

    # -- filter dispatch -------------------------------------------------------------

    def _vcgra_arch(self) -> VCGRAArchitecture:
        cfg = self.config
        return VCGRAArchitecture(
            rows=cfg.vcgra_rows,
            cols=cfg.vcgra_cols,
            pe_spec=ProcessingElementSpec(fmt=cfg.fmt),
        )

    def _filter(self, image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
        if self.config.backend == "numpy":
            return convolve2d(image, kernel)
        key = (id(kernel), kernel.shape[0], kernel.shape[1])
        engine = self._engines.get(key)
        if engine is None:
            engine = VCGRAFilterEngine(kernel, arch=self._vcgra_arch())
            self._engines[key] = engine
        return engine.apply(image, stride=self.config.vcgra_stride)

    # -- pipeline -------------------------------------------------------------------------

    def run(
        self,
        fundus: SyntheticFundus,
    ) -> SegmentationResult:
        """Run the full pipeline on a synthetic fundus image."""
        cfg = self.config
        times: Dict[str, float] = {}

        t0 = time.perf_counter()
        pre = preprocess(fundus.rgb, fundus.fov_mask)
        times["preprocess"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        denoised = pre
        for size in cfg.denoise_sizes:
            denoised = self._filter(denoised, gaussian_kernel(size))
        times["denoise"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        responses = [
            self._filter(denoised, k)
            for k in matched_filter_kernels(
                cfg.matched_size, cfg.matched_sigma, orientations=cfg.orientations
            )
        ]
        matched = np.max(np.stack(responses, axis=0), axis=0)
        times["matched_filters"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        texture = self._filter(matched, texture_kernel(cfg.texture_size, cfg.texture_thickness))
        times["texture"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        mask = threshold_image(texture, cfg.threshold_percentile, mask=fundus.fov_mask)
        times["threshold"] = time.perf_counter() - t0

        return SegmentationResult(
            preprocessed=pre,
            denoised=denoised,
            matched_response=matched,
            texture_response=texture,
            vessel_mask=mask,
            stage_seconds=times,
            backend=cfg.backend,
        )
