"""Retinal vessel segmentation: the HPC application of the paper's evaluation."""

from .filters import (
    DEFAULT_ORIENTATIONS,
    convolve2d,
    gaussian_kernel,
    matched_filter_kernels,
    pad_for_kernel,
    texture_kernel,
    threshold_image,
)
from .images import SyntheticFundus, generate_fundus
from .mapping import FilterMappingReport, VCGRAFilterEngine, kernel_to_applications
from .preprocessing import (
    extract_green_channel,
    histogram_equalization,
    preprocess,
    remove_optic_disc,
    remove_outer_region,
)
from .retina import RetinalVesselSegmentation, SegmentationConfig, SegmentationResult

__all__ = [
    "DEFAULT_ORIENTATIONS",
    "convolve2d",
    "gaussian_kernel",
    "matched_filter_kernels",
    "pad_for_kernel",
    "texture_kernel",
    "threshold_image",
    "SyntheticFundus",
    "generate_fundus",
    "FilterMappingReport",
    "VCGRAFilterEngine",
    "kernel_to_applications",
    "extract_green_channel",
    "histogram_equalization",
    "preprocess",
    "remove_optic_disc",
    "remove_outer_region",
    "RetinalVesselSegmentation",
    "SegmentationConfig",
    "SegmentationResult",
]
