"""Synthetic fundus image generation.

The paper evaluates on retinal fundus photographs (the standard public sets
are DRIVE/STARE-like images), which we cannot redistribute.  The segmentation
pipeline only relies on two structural properties of those images:

* vessels are dark, curvilinear structures whose cross-section is
  approximately Gaussian (the basis of the matched-filter approach of
  Chaudhuri et al. that the paper implements), and
* the background is a bright, roughly circular field of view with a brighter
  optic disc and smooth illumination gradients.

The generator below synthesizes RGB images with exactly those properties --
a textured circular fundus, an optic disc, and a branching vessel tree drawn
with Gaussian profiles -- together with the ground-truth vessel mask, which
real datasets provide only through manual annotation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["SyntheticFundus", "generate_fundus"]


@dataclass
class SyntheticFundus:
    """A generated fundus image plus its ground truth."""

    rgb: np.ndarray          #: (H, W, 3) float64 in [0, 1]
    vessel_mask: np.ndarray  #: (H, W) bool ground-truth vessel map
    fov_mask: np.ndarray     #: (H, W) bool field-of-view (circular aperture)
    optic_disc_center: Tuple[float, float]

    @property
    def shape(self) -> Tuple[int, int]:
        return self.rgb.shape[:2]

    @property
    def green_channel(self) -> np.ndarray:
        """The green channel, which carries most of the vessel contrast."""
        return self.rgb[:, :, 1]


def _draw_vessel_segment(
    intensity: np.ndarray,
    mask: np.ndarray,
    start: np.ndarray,
    direction: np.ndarray,
    length: float,
    width: float,
    depth: float,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw one vessel segment as a sequence of Gaussian cross-section stamps."""
    h, w = intensity.shape
    yy, xx = np.mgrid[0:h, 0:w]
    pos = start.astype(np.float64).copy()
    d = direction / (np.linalg.norm(direction) + 1e-12)
    steps = int(length)
    for _ in range(steps):
        # meander slightly, like a real vessel
        angle = rng.normal(0.0, 0.08)
        c, s = np.cos(angle), np.sin(angle)
        d = np.array([c * d[0] - s * d[1], s * d[0] + c * d[1]])
        pos += d
        if not (0 <= pos[0] < h and 0 <= pos[1] < w):
            break
        dist2 = (yy - pos[0]) ** 2 + (xx - pos[1]) ** 2
        stamp = np.exp(-dist2 / (2.0 * width**2))
        intensity -= depth * stamp
        mask |= dist2 <= (1.2 * width) ** 2
    return pos, d


def generate_fundus(
    size: int = 96,
    num_vessels: int = 5,
    branching: int = 2,
    vessel_width: float = 1.4,
    vessel_depth: float = 0.35,
    noise_sigma: float = 0.02,
    seed: int = 0,
) -> SyntheticFundus:
    """Generate a synthetic fundus image with ground-truth vessel mask.

    Parameters
    ----------
    size:
        Image side length in pixels (square images).
    num_vessels:
        Number of primary vessels radiating from the optic disc.
    branching:
        Number of child branches spawned per primary vessel.
    vessel_width:
        Gaussian cross-section sigma of the primary vessels, in pixels.
    vessel_depth:
        Contrast of vessels against the background (larger = darker vessels).
    noise_sigma:
        Standard deviation of the additive Gaussian sensor noise.
    seed:
        RNG seed; every call with the same arguments is reproducible.
    """
    if size < 16:
        raise ValueError("fundus images below 16x16 pixels are not meaningful")
    rng = np.random.default_rng(seed)
    h = w = size
    yy, xx = np.mgrid[0:h, 0:w]
    center = np.array([h / 2.0, w / 2.0])
    radius = 0.48 * size

    # Field of view and smooth background illumination.
    dist = np.sqrt((yy - center[0]) ** 2 + (xx - center[1]) ** 2)
    fov = dist <= radius
    background = 0.55 + 0.18 * np.exp(-dist**2 / (2.0 * (0.8 * radius) ** 2))
    background += 0.03 * np.sin(2 * np.pi * xx / size) * np.cos(2 * np.pi * yy / size)

    # Optic disc: a bright blob offset from the centre.
    disc_center = center + np.array([0.0, 0.55 * radius * rng.choice([-1.0, 1.0])])
    disc = 0.25 * np.exp(
        -((yy - disc_center[0]) ** 2 + (xx - disc_center[1]) ** 2) / (2.0 * (0.09 * size) ** 2)
    )
    green = background + disc

    vessel_mask = np.zeros((h, w), dtype=bool)
    for v in range(num_vessels):
        angle = 2 * np.pi * (v / num_vessels) + rng.normal(0, 0.2)
        direction = np.array([np.sin(angle), np.cos(angle)])
        start = disc_center + direction * 2.0
        end_pos, end_dir = _draw_vessel_segment(
            green, vessel_mask, start, direction, length=0.8 * radius,
            width=vessel_width, depth=vessel_depth, rng=rng,
        )
        for _ in range(branching):
            branch_angle = rng.normal(0.0, 0.6)
            c, s = np.cos(branch_angle), np.sin(branch_angle)
            branch_dir = np.array(
                [c * end_dir[0] - s * end_dir[1], s * end_dir[0] + c * end_dir[1]]
            )
            _draw_vessel_segment(
                green, vessel_mask, end_pos.copy(), branch_dir, length=0.4 * radius,
                width=0.7 * vessel_width, depth=0.8 * vessel_depth, rng=rng,
            )

    green += rng.normal(0.0, noise_sigma, size=green.shape)
    green = np.clip(green, 0.0, 1.0)
    green[~fov] = 0.02

    red = np.clip(green * 1.35 + 0.08, 0, 1)
    blue = np.clip(green * 0.45, 0, 1)
    rgb = np.stack([red, green, blue], axis=-1)
    vessel_mask &= fov

    return SyntheticFundus(
        rgb=rgb,
        vessel_mask=vessel_mask,
        fov_mask=fov,
        optic_disc_center=(float(disc_center[0]), float(disc_center[1])),
    )
