"""Mapping the retina filters onto the VCGRA.

The hardware modules of the application "all share the same core
architecture and what changes is size and coefficients of the filter
kernels" (Section IV).  That core is the MAC Processing Element; a filter is
implemented by loading its coefficients into the settings registers of a set
of PEs and streaming image samples through them.

The :class:`VCGRAFilterEngine` below performs 2-D filtering *on the VCGRA
functional simulator*:

* the kernel's coefficients are split into chains of MAC PEs (one chain per
  grid column, one tap per row);
* each chain computes a partial dot product of one window in one dataflow
  step; the partial sums of all chains are accumulated;
* kernels with more taps than the grid has PEs are processed in several
  *configurations*; switching configurations is a reconfiguration of the
  overlay and is priced by the reconfiguration cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.grid import VCGRAArchitecture
from ..core.pe import PEOp, ProcessingElementSpec
from ..core.reconfiguration import ReconfigurationCostModel
from ..core.toolflow import ApplicationGraph, PEOperation, ToolflowReport, run_vcgra_toolflow
from ..flopoco.format import FPFormat
from ..vsim.simulator import VCGRASimulator
from .filters import pad_for_kernel

__all__ = ["kernel_to_applications", "VCGRAFilterEngine", "FilterMappingReport"]


def kernel_to_applications(
    coefficients: Sequence[float],
    arch: VCGRAArchitecture,
) -> List[Tuple[ApplicationGraph, List[int]]]:
    """Split a flat coefficient list into VCGRA application graphs.

    Each application fills the grid with MAC chains (one per column, one tap
    per row); the return value pairs every application graph with the indices
    of the coefficients it covers, so the caller can assemble partial sums.
    """
    taps = list(coefficients)
    chain_len = arch.rows
    chains_per_app = arch.cols
    taps_per_app = chain_len * chains_per_app

    applications: List[Tuple[ApplicationGraph, List[int]]] = []
    for start in range(0, len(taps), taps_per_app):
        chunk = list(range(start, min(start + taps_per_app, len(taps))))
        app = ApplicationGraph(
            f"filter_taps_{start}",
            external_inputs=[f"x{i}" for i in chunk] + ["zero"],
        )
        for chain_idx in range(chains_per_app):
            chain = chunk[chain_idx * chain_len : (chain_idx + 1) * chain_len]
            if not chain:
                break
            prev = "zero"
            for tap in chain:
                name = f"mac{tap}"
                app.add_operation(
                    PEOperation(
                        name=name,
                        op=PEOp.MAC,
                        coefficient=float(taps[tap]),
                        count_limit=1,
                        sample_input=f"x{tap}",
                        acc_input=prev,
                    )
                )
                prev = name
            app.add_output(f"partial{chain_idx}", prev)
        applications.append((app, chunk))
    return applications


@dataclass
class FilterMappingReport:
    """How one kernel maps onto the overlay."""

    kernel_shape: Tuple[int, int]
    num_taps: int
    num_configurations: int
    pes_per_configuration: int
    compile_seconds: float
    reconfigurations_per_kernel_change: int

    def reconfiguration_time_ms(
        self, model: ReconfigurationCostModel, tluts_per_pe: int, tcons_per_pe: int
    ) -> float:
        """Overlay reconfiguration time when the filter coefficients change."""
        per_pe = model.estimate_time_ms(tluts_per_pe, tcons_per_pe)
        return per_pe * self.pes_per_configuration * self.num_configurations


class VCGRAFilterEngine:
    """2-D filtering executed on the VCGRA functional simulator."""

    def __init__(
        self,
        kernel: np.ndarray,
        arch: Optional[VCGRAArchitecture] = None,
        fmt: Optional[FPFormat] = None,
    ) -> None:
        self.kernel = np.asarray(kernel, dtype=np.float64)
        if self.kernel.ndim != 2:
            raise ValueError("kernel must be 2-D")
        if arch is None:
            fmt = fmt or FPFormat(we=6, wf=26)
            arch = VCGRAArchitecture(
                rows=4, cols=4, pe_spec=ProcessingElementSpec(fmt=fmt)
            )
        self.arch = arch
        self.fmt = arch.pe_spec.fmt

        coefficients = self.kernel.ravel().tolist()
        import time

        t0 = time.perf_counter()
        self.configurations: List[Tuple[ToolflowReport, List[int]]] = []
        for app, taps in kernel_to_applications(coefficients, arch):
            report = run_vcgra_toolflow(app, arch)
            self.configurations.append((report, taps))
        compile_seconds = time.perf_counter() - t0

        self.report = FilterMappingReport(
            kernel_shape=self.kernel.shape,
            num_taps=self.kernel.size,
            num_configurations=len(self.configurations),
            pes_per_configuration=min(self.kernel.size, arch.num_pes),
            compile_seconds=compile_seconds,
            reconfigurations_per_kernel_change=len(self.configurations),
        )
        self._simulators = [
            VCGRASimulator(arch, report.settings) for report, _ in self.configurations
        ]

    # -- window-level execution ---------------------------------------------------

    def apply_window(self, window: np.ndarray) -> float:
        """Dot product of one image window with the kernel, on the overlay."""
        flat = np.asarray(window, dtype=np.float64).ravel()
        if flat.size != self.kernel.size:
            raise ValueError("window shape does not match the kernel")
        total = 0.0
        zero = self.fmt.encode(0.0)
        for (report, taps), sim in zip(self.configurations, self._simulators):
            streams = {f"x{t}": flat[t] for t in taps}
            streams["zero"] = 0.0
            trace = sim.run({k: [v] for k, v in streams.items()})
            total += sum(values[-1] for values in trace.outputs.values())
        return total

    # -- image-level execution ------------------------------------------------------

    def apply(self, image: np.ndarray, stride: int = 1) -> np.ndarray:
        """Filter a whole image on the overlay (same-size output, symmetric padding).

        ``stride`` > 1 evaluates a regular subgrid of output pixels (used by
        the benchmarks to bound runtime on larger images); skipped pixels are
        filled by nearest evaluated neighbour.
        """
        img = np.asarray(image, dtype=np.float64)
        padded = pad_for_kernel(img, self.kernel.shape)
        h, w = img.shape
        kh, kw = self.kernel.shape
        out = np.zeros_like(img)
        for i in range(0, h, stride):
            for j in range(0, w, stride):
                window = padded[i : i + kh, j : j + kw]
                out[i, j] = self.apply_window(window)
        if stride > 1:
            # nearest-neighbour fill of the skipped positions
            ii = (np.arange(h) // stride) * stride
            jj = (np.arange(w) // stride) * stride
            out = out[np.ix_(ii, jj)]
        return out

    def reconfiguration_time_ms(
        self,
        model: Optional[ReconfigurationCostModel] = None,
        tluts_per_pe: int = 526,
        tcons_per_pe: int = 568,
    ) -> float:
        """Cost of loading new coefficients for this kernel (all configurations)."""
        model = model or ReconfigurationCostModel()
        return self.report.reconfiguration_time_ms(model, tluts_per_pe, tcons_per_pe)
