"""Software preprocessing steps of the retinal vessel segmentation pipeline.

Figure 5 of the paper: "the preprocessing steps are implemented in software,
while all filtering operations are implemented as hardware modules".  The
software part consists of green-channel extraction, histogram equalization,
optic-disc removal and outer-region (field-of-view border) removal; they are
implemented here with NumPy only.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "extract_green_channel",
    "histogram_equalization",
    "remove_optic_disc",
    "remove_outer_region",
    "preprocess",
]


def extract_green_channel(rgb: np.ndarray) -> np.ndarray:
    """Keep the green channel of an RGB fundus image (most vessel contrast)."""
    if rgb.ndim != 3 or rgb.shape[2] < 3:
        raise ValueError("expected an (H, W, 3) RGB image")
    return rgb[:, :, 1].astype(np.float64)


def histogram_equalization(image: np.ndarray, num_bins: int = 256,
                           mask: Optional[np.ndarray] = None) -> np.ndarray:
    """Global histogram equalization restricted to the field of view."""
    img = np.asarray(image, dtype=np.float64)
    if mask is None:
        mask = np.ones_like(img, dtype=bool)
    values = img[mask]
    if values.size == 0:
        return img.copy()
    lo, hi = float(values.min()), float(values.max())
    if hi <= lo:
        return img.copy()
    normalized = (img - lo) / (hi - lo)
    hist, bin_edges = np.histogram(normalized[mask], bins=num_bins, range=(0.0, 1.0))
    cdf = np.cumsum(hist).astype(np.float64)
    cdf /= cdf[-1]
    equalized = np.interp(normalized.ravel(), bin_edges[:-1], cdf).reshape(img.shape)
    out = img.copy()
    out[mask] = equalized[mask]
    return out


def remove_optic_disc(
    image: np.ndarray,
    mask: Optional[np.ndarray] = None,
    disc_radius_fraction: float = 0.12,
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Suppress the optic disc (the brightest compact region of the image).

    The disc centre is estimated as the argmax of a heavily smoothed copy of
    the image; a disc of ``disc_radius_fraction * image size`` around it is
    replaced by the local median intensity so the bright rim does not trigger
    the matched filters.
    """
    img = np.asarray(image, dtype=np.float64)
    if mask is None:
        mask = np.ones_like(img, dtype=bool)
    # cheap separable box smoothing (no SciPy needed here)
    k = max(3, int(0.05 * max(img.shape)) | 1)
    kernel = np.ones(k) / k
    smoothed = np.apply_along_axis(lambda r: np.convolve(r, kernel, mode="same"), 1, img)
    smoothed = np.apply_along_axis(lambda c: np.convolve(c, kernel, mode="same"), 0, smoothed)
    smoothed = np.where(mask, smoothed, -np.inf)
    cy, cx = np.unravel_index(int(np.argmax(smoothed)), img.shape)

    yy, xx = np.mgrid[0 : img.shape[0], 0 : img.shape[1]]
    disc_radius = disc_radius_fraction * max(img.shape)
    disc = (yy - cy) ** 2 + (xx - cx) ** 2 <= disc_radius**2
    out = img.copy()
    fill = np.median(img[mask & ~disc]) if np.any(mask & ~disc) else float(img.mean())
    out[disc & mask] = fill
    return out, (int(cy), int(cx))


def remove_outer_region(
    image: np.ndarray, fov_mask: np.ndarray, border: int = 2
) -> np.ndarray:
    """Clear everything outside (and just inside the rim of) the field of view."""
    img = np.asarray(image, dtype=np.float64)
    mask = np.asarray(fov_mask, dtype=bool)
    if border > 0:
        eroded = mask.copy()
        for _ in range(border):
            shrunk = eroded.copy()
            shrunk[1:, :] &= eroded[:-1, :]
            shrunk[:-1, :] &= eroded[1:, :]
            shrunk[:, 1:] &= eroded[:, :-1]
            shrunk[:, :-1] &= eroded[:, 1:]
            eroded = shrunk
        mask = eroded
    out = img.copy()
    fill = float(np.median(img[mask])) if np.any(mask) else 0.0
    out[~mask] = fill
    return out


def preprocess(rgb: np.ndarray, fov_mask: Optional[np.ndarray] = None) -> np.ndarray:
    """Full software preprocessing chain of Figure 5.

    Returns the preprocessed intensity image handed to the hardware filters.
    Vessels are dark in fundus images, so the image is inverted at the end:
    the matched filters then respond positively on vessels.
    """
    green = extract_green_channel(rgb)
    if fov_mask is None:
        fov_mask = green > 0.05
    equalized = histogram_equalization(green, mask=fov_mask)
    no_disc, _ = remove_optic_disc(equalized, mask=fov_mask)
    cleaned = remove_outer_region(no_disc, fov_mask)
    inverted = 1.0 - cleaned
    inverted[~fov_mask] = 0.0
    return inverted
