"""Filter kernels and convolution engine of the retina pipeline's hardware part.

Three families of filters appear in Figure 5 of the paper, all built on the
same MAC core:

* a Gaussian **denoise filter** (5x5 and 9x9 coefficient sets),
* the **matched vessel-detection filters**: Gaussian-profile line detectors
  steered over 7 orientations with 16x16 coefficient sets (Chaudhuri et al.),
* a **texture filter** (16x16, also applied at 5x5/9x9) that keeps only
  responses of a minimum thickness.

Every kernel is just a coefficient array; the hardware module is the MAC
Processing Element that multiplies image samples with those coefficients.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

__all__ = [
    "gaussian_kernel",
    "matched_filter_kernels",
    "texture_kernel",
    "convolve2d",
    "threshold_image",
    "DEFAULT_ORIENTATIONS",
]

#: the paper steers the matched filter over seven directions
DEFAULT_ORIENTATIONS = 7


def gaussian_kernel(size: int, sigma: Optional[float] = None) -> np.ndarray:
    """Normalized 2-D Gaussian denoise kernel (the 5x5 / 9x9 sets of the paper)."""
    if size < 1 or size % 2 == 0:
        raise ValueError("Gaussian kernel size must be odd and positive")
    sigma = sigma if sigma is not None else 0.3 * ((size - 1) * 0.5 - 1) + 0.8
    half = size // 2
    y, x = np.mgrid[-half : half + 1, -half : half + 1]
    kernel = np.exp(-(x**2 + y**2) / (2.0 * sigma**2))
    return kernel / kernel.sum()


def _matched_filter_base(size: int, sigma: float, length: float) -> np.ndarray:
    """Un-rotated matched filter: a Gaussian valley profile along the x axis.

    The cross-section of a vessel is modelled as an (inverted) Gaussian; the
    kernel is made zero-mean so flat background produces no response.
    """
    half = size / 2.0 - 0.5
    y, x = np.mgrid[0:size, 0:size]
    y = y - half
    x = x - half
    profile = np.exp(-(y**2) / (2.0 * sigma**2))
    support = np.abs(x) <= length / 2.0
    kernel = np.where(support, profile, 0.0)
    kernel[support] -= kernel[support].mean()
    return kernel


def _rotate_kernel(kernel: np.ndarray, angle_rad: float) -> np.ndarray:
    """Rotate a kernel by nearest-neighbour resampling (keeps coefficients exact)."""
    size = kernel.shape[0]
    half = size / 2.0 - 0.5
    y, x = np.mgrid[0:size, 0:size]
    y = y - half
    x = x - half
    c, s = math.cos(angle_rad), math.sin(angle_rad)
    src_x = c * x + s * y + half
    src_y = -s * x + c * y + half
    sx = np.clip(np.rint(src_x).astype(int), 0, size - 1)
    sy = np.clip(np.rint(src_y).astype(int), 0, size - 1)
    rotated = kernel[sy, sx]
    inside = (np.rint(src_x) >= 0) & (np.rint(src_x) < size) & \
             (np.rint(src_y) >= 0) & (np.rint(src_y) < size)
    rotated = np.where(inside, rotated, 0.0)
    if np.any(rotated != 0):
        rotated = rotated - rotated[rotated != 0].mean() * (rotated != 0)
    return rotated


def matched_filter_kernels(
    size: int = 16,
    sigma: float = 2.0,
    length: Optional[float] = None,
    orientations: int = DEFAULT_ORIENTATIONS,
) -> List[np.ndarray]:
    """The steerable matched-filter bank (7 rotations of a 16x16 kernel)."""
    if orientations < 1:
        raise ValueError("need at least one orientation")
    length = length if length is not None else 0.75 * size
    base = _matched_filter_base(size, sigma, length)
    kernels = []
    for k in range(orientations):
        angle = math.pi * k / orientations
        kernels.append(_rotate_kernel(base, angle))
    return kernels


def texture_kernel(size: int = 16, thickness: float = 2.5) -> np.ndarray:
    """Texture-processing kernel: keeps lines of a minimum thickness.

    Implemented as a centre-surround (difference of Gaussians) kernel whose
    positive core has the requested thickness; thin, high-frequency responses
    cancel while thick line segments survive.
    """
    if size < 3:
        raise ValueError("texture kernel must be at least 3x3")
    half = size / 2.0 - 0.5
    y, x = np.mgrid[0:size, 0:size]
    r2 = (y - half) ** 2 + (x - half) ** 2
    core = np.exp(-r2 / (2.0 * thickness**2))
    surround = np.exp(-r2 / (2.0 * (2.2 * thickness) ** 2))
    kernel = core / core.sum() - surround / surround.sum()
    return kernel


def pad_for_kernel(image: np.ndarray, kernel_shape: Tuple[int, int]) -> np.ndarray:
    """Symmetric padding so a sliding window of ``kernel_shape`` covers every pixel."""
    kh, kw = kernel_shape
    return np.pad(
        np.asarray(image, dtype=np.float64),
        (((kh - 1) // 2, kh // 2), ((kw - 1) // 2, kw // 2)),
        mode="symmetric",
    )


def convolve2d(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Same-size 2-D correlation (the MAC hardware computes sample*coeff sums).

    Correlation (not convolution) is used so that the coefficient at kernel
    position (i, j) multiplies the image sample at the same window offset --
    exactly the order in which the VCGRA's MAC chain consumes window samples.
    The image is padded symmetrically; this is also the window extraction the
    VCGRA filter engine uses, so the NumPy reference and the overlay-simulated
    filter see identical samples.
    """
    img = np.asarray(image, dtype=np.float64)
    k = np.asarray(kernel, dtype=np.float64)
    padded = pad_for_kernel(img, k.shape)
    windows = np.lib.stride_tricks.sliding_window_view(padded, k.shape)
    return np.tensordot(windows, k, axes=([2, 3], [0, 1]))


def threshold_image(image: np.ndarray, percentile: float = 90.0,
                    mask: Optional[np.ndarray] = None) -> np.ndarray:
    """Binary threshold at a percentile of the (masked) response distribution."""
    img = np.asarray(image, dtype=np.float64)
    region = img[mask] if mask is not None else img
    if region.size == 0:
        return np.zeros_like(img, dtype=bool)
    level = np.percentile(region, percentile)
    out = img >= level
    if mask is not None:
        out &= mask
    return out
