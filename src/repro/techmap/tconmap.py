"""TCONMAP: technology mapping for parameterized configurations.

Re-implementation of the mapping step the paper takes from Heyse et al.
(TODAES 2015): given a circuit whose ``--PARAM`` inputs change only rarely,
produce a netlist of

* **static LUTs** -- logic untouched by the parameters (Template Configuration),
* **TLUTs** -- LUTs whose truth table is a Boolean function of the parameters
  and is rewritten by micro-reconfiguration on every parameter change, and
* **TCONs** -- tunable connections: gates that collapse to plain wires for
  every parameter assignment and are therefore realized on the physical
  routing switches of the FPGA instead of consuming LUTs.

The headline benefit reproduced here is exactly the paper's Table I: the
fully parameterized mapping needs substantially fewer LUTs than conventional
mapping of the same Processing Element, because (a) parameters do not occupy
LUT pins and (b) the intra-PE connection network moves into TCONs.
"""

from __future__ import annotations

from ..netlist.circuit import Circuit
from .mapper import MapperOptions, technology_map
from .mapping import MappedNetwork

__all__ = ["map_parameterized", "tconmap"]


def map_parameterized(
    circuit: Circuit,
    k: int = 4,
    max_cuts: int = 6,
    max_tune: int = 8,
    extract_tcons: bool = True,
) -> MappedNetwork:
    """Map a parameter-annotated circuit to static LUTs, TLUTs and TCONs.

    Parameters
    ----------
    circuit:
        Gate-level circuit with ``param`` nodes marking the ``--PARAM`` inputs.
    k:
        Physical LUT input count (the paper targets the VPR 4-LUT architecture).
    max_cuts:
        Priority cuts kept per node during enumeration.
    max_tune:
        Maximum number of parameter variables folded into a single TLUT's
        reconfigurable truth table.
    extract_tcons:
        Disable to obtain the *semi-parameterized* mapping of the earlier work
        ([2] in the paper): TLUTs only, no tunable connections.  Useful for
        the ablation benchmarks.
    """
    options = MapperOptions(
        k=k,
        parameterized=True,
        max_cuts=max_cuts,
        max_tune=max_tune,
        extract_tcons=extract_tcons,
    )
    return technology_map(circuit, options)


#: Alias matching the paper's tool name.
tconmap = map_parameterized
