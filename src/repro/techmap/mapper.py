"""Shared cut-based technology-mapping engine.

The engine implements both mapping styles of the paper:

* **Conventional mapping** (``parameterized=False``): every input -- including
  the settings-register / parameter inputs -- occupies a physical LUT pin.
  This models the conventional VCGRA implementation in which the PE's
  functional and routing logic is all realized in LUTs.
* **TCONMAP** (``parameterized=True``): parameter inputs and parameter-only
  logic are folded into reconfigurable LUT truth tables (TLUTs), and gates
  that degenerate to plain wires for every parameter assignment are extracted
  as Tunable Connections (TCONs) to be realized on physical routing switches.

The algorithm is classic priority-cut mapping (depth-oriented selection with
an area tie-break), matching the role TCONMAP plays in the paper's flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..netlist.boolean import TruthTable, restrict
from ..netlist.circuit import Circuit, Op
from ..netlist.library import eval_gate
from .cuts import Cut, CutEnumerator, decompose_to_binary, param_only_nodes
from .mapping import MappedNetwork, MappedNode, NodeKind

__all__ = ["MapperOptions", "technology_map"]


@dataclass
class MapperOptions:
    """Knobs of the technology-mapping engine."""

    k: int = 4                 #: physical LUT input count
    parameterized: bool = False  #: TCONMAP mode (TLUTs + TCONs) vs conventional
    max_cuts: int = 6          #: priority cuts kept per node
    max_tune: int = 8          #: tune leaves allowed per cut (bounds TLUT table width)
    extract_tcons: bool = True  #: allow TCON extraction in parameterized mode


# ---------------------------------------------------------------------------
# Cut-function computation
# ---------------------------------------------------------------------------

def _cone_function(
    circuit: Circuit, root: int, variables: Sequence[int]
) -> TruthTable:
    """Truth table of ``root`` expressed over the ``variables`` leaf nodes.

    The cone is bounded by ``variables``; constants encountered inside the
    cone are folded.  The number of variables must be small (<= ~14).
    """
    var_pos = {nid: i for i, nid in enumerate(variables)}
    num_vars = len(variables)
    num_rows = 1 << num_vars
    mask = (1 << num_rows) - 1

    # Gather cone nodes (root down to the variables), excluding the variables.
    cone: List[int] = []
    seen: Set[int] = set()
    stack = [root]
    while stack:
        nid = stack.pop()
        if nid in seen or nid in var_pos:
            continue
        seen.add(nid)
        cone.append(nid)
        op = circuit.ops[nid]
        if op not in Op.LEAVES:
            stack.extend(circuit.fanins[nid])
        elif op not in (Op.CONST0, Op.CONST1):
            raise ValueError(
                f"cone of node {root} reaches non-constant leaf {nid} "
                "that is not part of the cut"
            )
    cone.sort()

    # Exhaustive patterns for the variables.
    values: Dict[int, int] = {}
    for nid, pos in var_pos.items():
        packed = 0
        block = 1 << pos
        period = block << 1
        for start in range(block, num_rows, period):
            packed |= ((1 << block) - 1) << start
        values[nid] = packed

    for nid in cone:
        op = circuit.ops[nid]
        if op == Op.CONST0:
            values[nid] = 0
        elif op == Op.CONST1:
            values[nid] = mask
        else:
            args = [values[f] for f in circuit.fanins[nid]]
            values[nid] = eval_gate(op, args, mask)
    return TruthTable(num_vars, values[root])


def _is_noninverting_wire(tt: TruthTable, num_data: int) -> bool:
    """True if ``tt`` restricted to *every* tune assignment is a plain wire.

    ``tt`` is over ``num_data`` data variables followed by tune variables.
    For every assignment of the tune variables the restricted function must
    equal one of the data variables (without inversion) or a constant.
    """
    num_tune = tt.num_vars - num_data
    from ..netlist.boolean import var_tt  # local import to avoid cycle at module load

    data_patterns = [var_tt(v, tt.num_vars).bits for v in range(num_data)]
    full_mask = (1 << (1 << tt.num_vars)) - 1
    for assignment in range(1 << num_tune):
        assign_map = {num_data + j: (assignment >> j) & 1 for j in range(num_tune)}
        restricted = restrict(tt, assign_map)
        bits = restricted.bits
        if bits == 0 or bits == full_mask:
            continue
        if not any(bits == p for p in data_patterns):
            return False
    return True


# ---------------------------------------------------------------------------
# TCON extraction
# ---------------------------------------------------------------------------

def _detect_tcons(
    circuit: Circuit, options: MapperOptions, param_only: Set[int]
) -> Dict[int, Tuple[Tuple[int, ...], Tuple[int, ...], TruthTable]]:
    """Find gates that are tunable connections.

    Returns a dict mapping the circuit node id of each TCON to
    ``(data_fanins, tune_fanins, local_function)`` where the function is over
    the data fanins followed by the tune fanins.
    """
    tcons: Dict[int, Tuple[Tuple[int, ...], Tuple[int, ...], TruthTable]] = {}
    if not (options.parameterized and options.extract_tcons):
        return tcons

    for nid in circuit.gate_ids():
        if nid in param_only:
            continue
        fins = circuit.fanins[nid]
        data: List[int] = []
        tune: List[int] = []
        for f in dict.fromkeys(fins):  # unique, order-preserving
            if circuit.ops[f] == Op.PARAM or f in param_only:
                tune.append(f)
            elif circuit.ops[f] in (Op.CONST0, Op.CONST1):
                continue
            else:
                data.append(f)
        if not tune or not data:
            continue
        if len(data) + len(tune) > 12:
            continue
        variables = tuple(data) + tuple(tune)
        tt = _cone_function(circuit, nid, variables)
        if _is_noninverting_wire(tt, len(data)):
            # Every qualifying gate becomes a TCON regardless of fanout; in the
            # physical implementation a multi-fanout tunable connection is
            # simply a routing switch with several sinks.
            tcons[nid] = (tuple(data), tuple(tune), tt)
    return tcons


# ---------------------------------------------------------------------------
# Mapping engine
# ---------------------------------------------------------------------------

def technology_map(circuit: Circuit, options: Optional[MapperOptions] = None) -> MappedNetwork:
    """Map a gate-level circuit to a network of LUTs, TLUTs and TCONs.

    The input circuit is first normalized (variadic gates decomposed to
    binary trees); the returned :class:`MappedNetwork` references the
    normalized circuit as its ``source``.
    """
    options = options or MapperOptions()
    prepared = decompose_to_binary(circuit)
    prepared.validate()

    p_only = param_only_nodes(prepared) if options.parameterized else set()
    tcons = _detect_tcons(prepared, options, p_only)

    enumerator = CutEnumerator(
        prepared,
        k=options.k,
        parameterized=options.parameterized,
        max_cuts=options.max_cuts,
        max_tune=options.max_tune,
        barriers=set(tcons),
    )
    enumerator.enumerate()

    network = MappedNetwork(prepared, k=options.k)

    # ------------------------------------------------------------------
    # Phase 1: decide which circuit nodes need a mapped realization.
    # ------------------------------------------------------------------
    selected_cut: Dict[int, Cut] = {}
    needed: Set[int] = set()
    stack = list(prepared.outputs.values())
    while stack:
        nid = stack.pop()
        if nid in needed:
            continue
        op = prepared.ops[nid]
        needed.add(nid)
        if op in Op.LEAVES:
            continue
        if options.parameterized and nid in p_only:
            # Realized as a parameter-driven configuration value (a TLUT with
            # no data inputs) only if something physical consumes it -- which
            # is the case here because it was reached from an output or a
            # mapped node's data leaves.
            continue
        if nid in tcons:
            data, tune, _tt = tcons[nid]
            stack.extend(data)
            continue
        cut = enumerator.best_cut(nid)
        selected_cut[nid] = cut
        stack.extend(cut.data_leaves)

    # ------------------------------------------------------------------
    # Phase 2: create mapped nodes in topological order.
    # ------------------------------------------------------------------
    node_map: Dict[int, int] = {}
    for nid in sorted(needed):
        op = prepared.ops[nid]
        name = prepared.names.get(nid)
        if op == Op.INPUT:
            node_map[nid] = network.add_node(
                MappedNode(NodeKind.INPUT, source=nid, name=name or f"in{nid}")
            )
        elif op == Op.PARAM:
            node_map[nid] = network.add_node(
                MappedNode(NodeKind.PARAM, source=nid, name=name or f"param{nid}")
            )
            if not options.parameterized:
                # In the conventional flow parameters are ordinary inputs.
                pass
        elif op == Op.CONST0:
            node_map[nid] = network.add_node(MappedNode(NodeKind.CONST0, source=nid))
        elif op == Op.CONST1:
            node_map[nid] = network.add_node(MappedNode(NodeKind.CONST1, source=nid))
        elif options.parameterized and nid in p_only:
            # Pure function of parameters: a zero-data-input TLUT whose single
            # configuration bit is computed by the SCG.  The tune variable is
            # the node itself and the function is the identity on it.
            from ..netlist.boolean import var_tt

            node_map[nid] = network.add_node(
                MappedNode(
                    NodeKind.TLUT,
                    inputs=(),
                    function=var_tt(0, 1),
                    tune_vars=(nid,),
                    source=nid,
                    name=name,
                )
            )
        elif nid in tcons:
            data, tune, tt = tcons[nid]
            inputs = tuple(node_map[d] for d in data)
            node_map[nid] = network.add_node(
                MappedNode(
                    NodeKind.TCON,
                    inputs=inputs,
                    function=tt,
                    tune_vars=tune,
                    source=nid,
                    name=name,
                )
            )
        else:
            cut = selected_cut[nid]
            variables = cut.data_leaves + cut.tune_leaves
            tt = _cone_function(prepared, nid, variables)
            tune_vars = cut.tune_leaves
            if tune_vars and not any(
                tt.depends_on(len(cut.data_leaves) + j) for j in range(len(tune_vars))
            ):
                # The cut function turned out independent of the parameters:
                # shrink it to the data variables and emit a static LUT.
                assignment = {len(cut.data_leaves) + j: 0 for j in range(len(tune_vars))}
                tt_data = restrict(tt, assignment)
                small, kept = tt_data.shrink_to_support()
                tt = small.expand(len(cut.data_leaves), list(kept))
                tune_vars = ()
            kind = NodeKind.TLUT if tune_vars else NodeKind.LUT
            inputs = tuple(node_map[d] for d in cut.data_leaves)
            node_map[nid] = network.add_node(
                MappedNode(
                    kind,
                    inputs=inputs,
                    function=tt,
                    tune_vars=tune_vars,
                    source=nid,
                    name=name,
                )
            )

    for out_name, out_nid in prepared.outputs.items():
        network.add_output(out_name, node_map[out_nid])
    network.validate()
    return network
