"""Technology mapping: conventional LUT mapping and TCONMAP (TLUTs + TCONs)."""

from .cuts import Cut, CutEnumerator, decompose_to_binary, param_only_nodes
from .lutmap import map_conventional
from .mapper import MapperOptions, technology_map
from .mapping import MappedNetwork, MappedNode, MappingStats, NodeKind, SpecializedNetwork
from .tconmap import map_parameterized, tconmap

__all__ = [
    "Cut",
    "CutEnumerator",
    "decompose_to_binary",
    "param_only_nodes",
    "map_conventional",
    "MapperOptions",
    "technology_map",
    "MappedNetwork",
    "MappedNode",
    "MappingStats",
    "NodeKind",
    "SpecializedNetwork",
    "map_parameterized",
    "tconmap",
]
