"""Conventional 4-LUT technology mapping.

This models the *conventional VCGRA implementation* of the paper: every part
of the Processing Element -- functional logic, settings-register consumers
and the intra-PE routing multiplexers -- is realized in the FPGA's LUTs, and
the parameter inputs (settings-register bits) occupy ordinary LUT pins.
"""

from __future__ import annotations


from ..netlist.circuit import Circuit
from .mapper import MapperOptions, technology_map
from .mapping import MappedNetwork

__all__ = ["map_conventional"]


def map_conventional(
    circuit: Circuit,
    k: int = 4,
    max_cuts: int = 6,
) -> MappedNetwork:
    """Map a circuit to K-input LUTs with no parameterization.

    Returns a :class:`~repro.techmap.mapping.MappedNetwork` containing only
    static LUTs (plus leaves); ``num_tluts()`` and ``num_tcons()`` are zero
    by construction.
    """
    options = MapperOptions(k=k, parameterized=False, max_cuts=max_cuts)
    return technology_map(circuit, options)
