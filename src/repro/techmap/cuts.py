"""Cut enumeration and netlist preparation for technology mapping.

Both mappers (conventional LUT mapping and TCONMAP) are cut-based: for every
gate they enumerate *cuts* -- sets of nodes that completely separate the gate
from the primary inputs -- and then choose one cut per mapped gate such that
the selected cut functions become LUT configurations.

The difference between the two mappers is entirely in the *cost model* of a
cut: the conventional mapper counts every leaf against the K-input limit of
the physical LUT, while TCONMAP lets parameter inputs and parameter-only
nodes ride along for free because they end up in the LUT's reconfigurable
truth table rather than on its physical input pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..netlist.circuit import Circuit, Op

__all__ = ["Cut", "CutEnumerator", "decompose_to_binary", "param_only_nodes"]


def decompose_to_binary(circuit: Circuit) -> Circuit:
    """Rewrite variadic AND/OR/XOR (and negated forms) into balanced binary trees.

    Cut-based mapping needs bounded-arity gates; the synthesis front-end is
    free to create wide reduction gates, so mapping always starts with this
    normalization.  MUX gates (3 fanins) are left untouched.
    """
    new = Circuit(name=circuit.name, strash=True)
    node_map: Dict[int, int] = {}

    def balanced(op: str, operands: List[int]) -> int:
        while len(operands) > 1:
            nxt = []
            for i in range(0, len(operands) - 1, 2):
                nxt.append(new.gate(op, operands[i], operands[i + 1]))
            if len(operands) % 2:
                nxt.append(operands[-1])
            operands = nxt
        return operands[0]

    for nid, op in enumerate(circuit.ops):
        name = circuit.names.get(nid)
        fins = tuple(node_map[f] for f in circuit.fanins[nid])
        if op == Op.INPUT:
            node_map[nid] = new.add_input(name or f"in{nid}")
        elif op == Op.PARAM:
            node_map[nid] = new.add_param(name or f"param{nid}")
        elif op == Op.CONST0:
            node_map[nid] = new.const(0)
        elif op == Op.CONST1:
            node_map[nid] = new.const(1)
        elif op in (Op.AND, Op.OR, Op.XOR) and len(fins) > 2:
            node_map[nid] = balanced(op, list(fins))
        elif op in (Op.NAND, Op.NOR, Op.XNOR) and len(fins) > 2:
            base = {Op.NAND: Op.AND, Op.NOR: Op.OR, Op.XNOR: Op.XOR}[op]
            node_map[nid] = new.g_not(balanced(base, list(fins)))
        else:
            node_map[nid] = new.gate(op, *fins, name=name) if fins else new._new_node(op, (), name)
    for out_name, out_nid in circuit.outputs.items():
        new.add_output(out_name, node_map[out_nid])
    return new


def param_only_nodes(circuit: Circuit) -> Set[int]:
    """Nodes whose value depends on parameters only (no regular-input dependence).

    In the parameterized flow these nodes need no hardware at all: the SCG
    evaluates them in software during specialization, exactly like the
    Boolean functions stored in the Partial Parameterized Configuration.
    """
    param_dep = [False] * len(circuit)
    input_dep = [False] * len(circuit)
    for nid, op in enumerate(circuit.ops):
        if op == Op.PARAM:
            param_dep[nid] = True
        elif op == Op.INPUT:
            input_dep[nid] = True
        elif op not in Op.LEAVES:
            fins = circuit.fanins[nid]
            param_dep[nid] = any(param_dep[f] for f in fins)
            input_dep[nid] = any(input_dep[f] for f in fins)
    return {
        nid
        for nid in circuit.node_ids()
        if param_dep[nid] and not input_dep[nid]
    }


@dataclass(frozen=True)
class Cut:
    """A cut of a node: its leaves split into data leaves and tune leaves.

    ``data_leaves`` occupy physical LUT input pins; ``tune_leaves`` (parameter
    inputs or parameter-only nodes) are absorbed into the reconfigurable
    truth table (TCONMAP mode only -- the conventional mapper never produces
    tune leaves).
    """

    data_leaves: Tuple[int, ...]
    tune_leaves: Tuple[int, ...]
    depth: int

    @property
    def num_data(self) -> int:
        return len(self.data_leaves)

    @property
    def num_total(self) -> int:
        return len(self.data_leaves) + len(self.tune_leaves)

    def all_leaves(self) -> Tuple[int, ...]:
        return self.data_leaves + self.tune_leaves


class CutEnumerator:
    """Priority-cut enumeration over a prepared (binary-arity) circuit.

    Parameters
    ----------
    circuit:
        Circuit to enumerate (must already be decomposed to arity <= 3).
    k:
        Physical LUT input count (data-leaf limit per cut).
    parameterized:
        TCONMAP mode: parameter inputs and parameter-only nodes become *tune
        leaves* that do not count against ``k``.
    max_cuts:
        Priority-cut limit per node.
    max_tune:
        Limit on tune leaves per cut (bounds the truth-table width of TLUTs).
    barriers:
        Node ids that cuts must not cross (they are treated as leaves).  The
        TCONMAP wrapper passes the detected TCON nodes here so LUT cuts stop
        at tunable-connection boundaries.
    """

    def __init__(
        self,
        circuit: Circuit,
        k: int = 4,
        parameterized: bool = False,
        max_cuts: int = 6,
        max_tune: int = 8,
        barriers: Optional[Set[int]] = None,
    ) -> None:
        self.circuit = circuit
        self.k = k
        self.parameterized = parameterized
        self.max_cuts = max_cuts
        self.max_tune = max_tune
        self.barriers = barriers or set()
        self.param_only = param_only_nodes(circuit) if parameterized else set()
        self.cuts: Dict[int, List[Cut]] = {}
        self.arrival: Dict[int, int] = {}

    # -- leaf classification -------------------------------------------------

    def is_free_leaf(self, nid: int) -> bool:
        """Leaves that cost no LUT pin (tune leaves) in parameterized mode."""
        if not self.parameterized:
            return False
        op = self.circuit.ops[nid]
        return op == Op.PARAM or nid in self.param_only

    def is_structural_leaf(self, nid: int) -> bool:
        """Nodes at which cut expansion always stops."""
        op = self.circuit.ops[nid]
        if op in Op.LEAVES:
            return True
        return nid in self.barriers or nid in self.param_only

    # -- enumeration -----------------------------------------------------------

    def _leaf_arrival(self, nid: int) -> int:
        return self.arrival.get(nid, 0)

    def _unit_cut(self, nid: int) -> Cut:
        """The cut consisting of the node itself (used when it becomes a leaf
        of a downstream cut)."""
        return Cut((nid,), (), self._leaf_arrival(nid))

    def _make_cut(self, leaves: Set[int]) -> Optional[Cut]:
        data, tune = [], []
        for leaf in leaves:
            op = self.circuit.ops[leaf]
            if op in (Op.CONST0, Op.CONST1):
                # Constants fold into the truth table for free.
                continue
            if self.is_free_leaf(leaf):
                tune.append(leaf)
            else:
                data.append(leaf)
        if len(data) > self.k or len(tune) > self.max_tune:
            return None
        depth = 1 + max((self._leaf_arrival(d) for d in data), default=0)
        return Cut(tuple(sorted(data)), tuple(sorted(tune)), depth)

    def _merge(self, fanin_cut_sets: Sequence[List[Set[int]]]) -> List[Set[int]]:
        merged = [set()]
        for cut_choices in fanin_cut_sets:
            nxt = []
            for partial in merged:
                for choice in cut_choices:
                    union = partial | choice
                    # quick infeasibility check on total size
                    if len(union) <= self.k + self.max_tune + 2:
                        nxt.append(union)
            merged = nxt
            if len(merged) > 64:
                merged = merged[:64]
        return merged

    def enumerate(self) -> Dict[int, List[Cut]]:
        """Enumerate priority cuts for every gate node; fills ``arrival`` too."""
        circuit = self.circuit
        for nid in circuit.node_ids():
            op = circuit.ops[nid]
            if op in Op.LEAVES:
                self.arrival[nid] = 0
                continue
            if nid in self.param_only:
                # No hardware: evaluated by the SCG; arrival 0.
                self.arrival[nid] = 0
                continue
            if nid in self.barriers:
                # Barrier (TCON) nodes: arrival is the max of data-fanin arrivals
                # (they add no LUT level); they expose only their unit cut.
                fins = circuit.fanins[nid]
                self.arrival[nid] = max(
                    (self.arrival.get(f, 0) for f in fins if not self.is_free_leaf(f)),
                    default=0,
                )
                continue

            fanin_choices: List[List[Set[int]]] = []
            for f in circuit.fanins[nid]:
                if self.is_structural_leaf(f):
                    fanin_choices.append([{f}])
                else:
                    choices = [set(c.all_leaves()) for c in self.cuts.get(f, [])]
                    choices.append({f})  # the fanin itself as a leaf
                    fanin_choices.append(choices)

            candidate_leafsets = self._merge(fanin_choices)
            cuts: List[Cut] = []
            seen = set()
            for leaves in candidate_leafsets:
                key = frozenset(leaves)
                if key in seen:
                    continue
                seen.add(key)
                cut = self._make_cut(leaves)
                if cut is not None:
                    cuts.append(cut)
            if not cuts:
                # Fall back to the immediate-fanin cut; always feasible for
                # arity <= 3 gates with k >= 3.
                cut = self._make_cut(set(circuit.fanins[nid]))
                if cut is None:
                    raise RuntimeError(
                        f"node {nid} ({op}) has no feasible cut; "
                        "was the circuit decomposed to binary arity?"
                    )
                cuts = [cut]
            cuts.sort(key=lambda c: (c.depth, c.num_data, c.num_total))
            cuts = cuts[: self.max_cuts]
            self.cuts[nid] = cuts
            self.arrival[nid] = cuts[0].depth
        return self.cuts

    def best_cut(self, nid: int) -> Cut:
        """Best (depth-first, then fewest data leaves) cut of a gate node."""
        return self.cuts[nid][0]
