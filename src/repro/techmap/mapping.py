"""Mapped-netlist data structures shared by the technology mappers.

A :class:`MappedNetwork` is the output of technology mapping: a netlist whose
nodes are 4-input LUTs, *Tunable* LUTs (TLUTs), *Tunable Connections* (TCONs)
and leaves (regular inputs, parameter inputs, constants).

* A **LUT** implements a fixed Boolean function of up to K data inputs.
* A **TLUT** implements a Boolean function of up to K data inputs whose
  *configuration* (truth table) additionally depends on the parameter
  inputs.  Physically it is one LUT whose configuration bits are rewritten
  by micro-reconfiguration whenever the parameters change.
* A **TCON** is a connection that, for every fixed parameter assignment,
  degenerates to a plain (non-inverting) wire from one of its data inputs or
  to a constant.  It consumes no LUT; it is realized on the FPGA's physical
  routing switches, which is exactly the contribution of the paper.

The extra "tuning" variables of TLUTs and TCONs are recorded per node as
references to *source-circuit* node ids (parameter inputs or parameter-only
internal nodes).  Specialization -- the job of the SCG in the paper's flow --
is performed by :meth:`MappedNetwork.specialize`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..netlist.boolean import TruthTable, restrict, wire_source
from ..netlist.circuit import Circuit
from ..netlist.simulate import simulate_patterns

__all__ = ["MappedNode", "MappedNetwork", "SpecializedNetwork", "MappingStats"]


class NodeKind:
    """Node kinds of a mapped network."""

    INPUT = "input"
    PARAM = "param"
    CONST0 = "const0"
    CONST1 = "const1"
    LUT = "lut"
    TLUT = "tlut"
    TCON = "tcon"

    LEAVES = (INPUT, PARAM, CONST0, CONST1)
    LOGIC = (LUT, TLUT, TCON)


@dataclass
class MappedNode:
    """One node of a mapped network."""

    kind: str
    #: mapped-network ids of the data inputs (LSB-first variable order)
    inputs: Tuple[int, ...] = ()
    #: Boolean function over (data inputs ++ tune variables); ``None`` for leaves
    function: Optional[TruthTable] = None
    #: source-circuit node ids of the tuning variables (params / param-only nodes)
    tune_vars: Tuple[int, ...] = ()
    #: source-circuit node id this mapped node implements (for traceability)
    source: Optional[int] = None
    name: Optional[str] = None

    @property
    def is_tunable(self) -> bool:
        return bool(self.tune_vars)

    @property
    def num_data_inputs(self) -> int:
        return len(self.inputs)


@dataclass
class MappingStats:
    """Resource summary of a mapped network (the quantities of Table I)."""

    num_luts: int
    num_tluts: int
    num_tcons: int
    depth: int
    num_inputs: int
    num_params: int
    num_outputs: int

    @property
    def num_static_luts(self) -> int:
        """LUTs whose configuration never changes (part of the Template Configuration)."""
        return self.num_luts - self.num_tluts

    def as_dict(self) -> Dict[str, int]:
        return {
            "luts": self.num_luts,
            "tluts": self.num_tluts,
            "static_luts": self.num_static_luts,
            "tcons": self.num_tcons,
            "depth": self.depth,
            "inputs": self.num_inputs,
            "params": self.num_params,
            "outputs": self.num_outputs,
        }


@dataclass
class SpecializedNetwork:
    """A mapped network specialized for concrete parameter values.

    This is the output of the Specialized Configuration Generator: per-TLUT
    truth tables with the parameters substituted, and per-TCON selected
    sources.  ``lut_configs[node_id]`` is the specialized truth table,
    ``tcon_routes[node_id]`` is ``("var", input_position)`` /
    ``("const0"|"const1", None)``.
    """

    network: "MappedNetwork"
    param_values: Dict[int, int]
    lut_configs: Dict[int, TruthTable] = field(default_factory=dict)
    tcon_routes: Dict[int, Tuple[str, Optional[int]]] = field(default_factory=dict)

    def evaluate(self, input_values: Mapping[str, int]) -> Dict[str, int]:
        """Evaluate the specialized network on named 0/1 input values."""
        return self.network._evaluate(input_values, specialized=self)


class MappedNetwork:
    """A technology-mapped netlist of LUTs, TLUTs and TCONs."""

    def __init__(self, source: Circuit, k: int = 4) -> None:
        self.source = source
        self.k = k
        self.nodes: List[MappedNode] = []
        self.outputs: Dict[str, int] = {}

    # -- construction -------------------------------------------------------

    def add_node(self, node: MappedNode) -> int:
        for inp in node.inputs:
            if not 0 <= inp < len(self.nodes):
                raise ValueError(f"mapped node input {inp} does not exist")
        if node.kind in (NodeKind.LUT, NodeKind.TLUT) and node.function is None:
            raise ValueError("LUT/TLUT nodes need a function")
        self.nodes.append(node)
        return len(self.nodes) - 1

    def add_output(self, name: str, node_id: int) -> None:
        if name in self.outputs:
            raise ValueError(f"duplicate output {name!r}")
        self.outputs[name] = node_id

    # -- statistics ----------------------------------------------------------

    def num_luts(self) -> int:
        """Total LUT count (static LUTs + TLUTs), the headline metric of Table I."""
        return sum(1 for n in self.nodes if n.kind in (NodeKind.LUT, NodeKind.TLUT))

    def num_tluts(self) -> int:
        return sum(1 for n in self.nodes if n.kind == NodeKind.TLUT)

    def num_tcons(self) -> int:
        return sum(1 for n in self.nodes if n.kind == NodeKind.TCON)

    def logic_node_ids(self) -> List[int]:
        return [i for i, n in enumerate(self.nodes) if n.kind in NodeKind.LOGIC]

    def lut_node_ids(self) -> List[int]:
        return [i for i, n in enumerate(self.nodes) if n.kind in (NodeKind.LUT, NodeKind.TLUT)]

    def tcon_node_ids(self) -> List[int]:
        return [i for i, n in enumerate(self.nodes) if n.kind == NodeKind.TCON]

    def input_node_ids(self) -> List[int]:
        return [i for i, n in enumerate(self.nodes) if n.kind == NodeKind.INPUT]

    def param_node_ids(self) -> List[int]:
        return [i for i, n in enumerate(self.nodes) if n.kind == NodeKind.PARAM]

    def levels(self) -> List[int]:
        """Per-node logic level; LUT/TLUT nodes count one level, TCONs count zero."""
        level = [0] * len(self.nodes)
        for nid, node in enumerate(self.nodes):
            if node.kind in NodeKind.LEAVES:
                level[nid] = 0
            else:
                base = max((level[i] for i in node.inputs), default=0)
                level[nid] = base + (1 if node.kind in (NodeKind.LUT, NodeKind.TLUT) else 0)
        return level

    def depth(self) -> int:
        """Logic depth in LUT levels over the primary outputs."""
        if not self.outputs:
            return 0
        level = self.levels()
        return max(level[n] for n in self.outputs.values())

    def stats(self) -> MappingStats:
        return MappingStats(
            num_luts=self.num_luts(),
            num_tluts=self.num_tluts(),
            num_tcons=self.num_tcons(),
            depth=self.depth(),
            num_inputs=len(self.input_node_ids()),
            num_params=len(self.param_node_ids()),
            num_outputs=len(self.outputs),
        )

    def validate(self) -> None:
        """Check structural invariants of the mapped network."""
        for nid, node in enumerate(self.nodes):
            if node.kind not in NodeKind.LEAVES + NodeKind.LOGIC:
                raise ValueError(f"node {nid}: unknown kind {node.kind!r}")
            for inp in node.inputs:
                if not 0 <= inp < nid:
                    raise ValueError(f"node {nid}: input {inp} is not an earlier node")
            if node.kind in (NodeKind.LUT, NodeKind.TLUT):
                if len(node.inputs) > self.k:
                    raise ValueError(
                        f"node {nid}: {len(node.inputs)} data inputs exceed K={self.k}"
                    )
                expected_vars = len(node.inputs) + len(node.tune_vars)
                if node.function.num_vars != expected_vars:
                    raise ValueError(
                        f"node {nid}: function arity {node.function.num_vars} != "
                        f"{expected_vars} (inputs + tune vars)"
                    )
                if node.kind == NodeKind.LUT and node.tune_vars:
                    raise ValueError(f"node {nid}: static LUT must not have tune vars")
                if node.kind == NodeKind.TLUT and not node.tune_vars:
                    raise ValueError(f"node {nid}: TLUT must have tune vars")
            if node.kind == NodeKind.TCON:
                if node.function is None or not node.tune_vars:
                    raise ValueError(f"node {nid}: TCON needs a function and tune vars")
        for name, nid in self.outputs.items():
            if not 0 <= nid < len(self.nodes):
                raise ValueError(f"output {name!r} refers to missing node {nid}")

    # -- specialization (the SCG step) ---------------------------------------

    def _tune_var_values(self, param_values: Mapping[int, int]) -> Dict[int, int]:
        """Evaluate every tune variable (param or param-only source node) for
        the given parameter assignment by simulating the source circuit."""
        needed = set()
        for node in self.nodes:
            needed.update(node.tune_vars)
        if not needed:
            return {}
        values = simulate_patterns(self.source, {}, 1, dict(param_values))
        return {nid: values[nid] & 1 for nid in needed}

    def specialize(self, param_values: Mapping[int, int]) -> SpecializedNetwork:
        """Generate the specialized configuration for a concrete parameter assignment.

        ``param_values`` maps source-circuit *parameter node ids* to 0/1.  The
        result carries, for every TLUT, the specialized truth table over its
        data inputs and, for every TCON, the selected data source -- i.e. the
        bits the SCG would write into the FPGA's configuration memory.
        """
        tune_values = self._tune_var_values(param_values)
        spec = SpecializedNetwork(self, dict(param_values))
        for nid, node in enumerate(self.nodes):
            if node.kind == NodeKind.LUT:
                spec.lut_configs[nid] = node.function
            elif node.kind == NodeKind.TLUT:
                assignment = {
                    len(node.inputs) + j: tune_values.get(var, 0)
                    for j, var in enumerate(node.tune_vars)
                }
                restricted = restrict(node.function, assignment)
                small, kept = restricted.shrink_to_support()
                # Re-express over exactly the data-input variables.
                spec.lut_configs[nid] = small.expand(len(node.inputs), list(kept))
            elif node.kind == NodeKind.TCON:
                assignment = {
                    len(node.inputs) + j: tune_values.get(var, 0)
                    for j, var in enumerate(node.tune_vars)
                }
                restricted = restrict(node.function, assignment)
                kind, var, inverted = wire_source(restricted, range(len(node.inputs)))
                if inverted:
                    raise ValueError(
                        f"TCON node {nid} specialized to an inverted wire; "
                        "mapper must not emit inverting TCONs"
                    )
                spec.tcon_routes[nid] = (kind, var)
        return spec

    # -- evaluation -----------------------------------------------------------

    def _evaluate(
        self,
        input_values: Mapping[str, int],
        specialized: Optional[SpecializedNetwork] = None,
        param_values: Optional[Mapping[int, int]] = None,
    ) -> Dict[str, int]:
        """Evaluate the network for one pattern of named input values."""
        if specialized is None:
            specialized = self.specialize(dict(param_values or {}))
        name_to_value = dict(input_values)
        values: List[int] = [0] * len(self.nodes)
        for nid, node in enumerate(self.nodes):
            if node.kind == NodeKind.INPUT:
                values[nid] = 1 if name_to_value.get(node.name, 0) else 0
            elif node.kind == NodeKind.PARAM:
                # Only present in conventionally mapped networks, where the
                # settings register drives the logic through ordinary pins.
                values[nid] = 1 if specialized.param_values.get(node.source, 0) else 0
            elif node.kind == NodeKind.CONST0:
                values[nid] = 0
            elif node.kind == NodeKind.CONST1:
                values[nid] = 1
            elif node.kind in (NodeKind.LUT, NodeKind.TLUT):
                config = specialized.lut_configs[nid]
                values[nid] = config.evaluate([values[i] for i in node.inputs])
            else:  # TCON
                kind, var = specialized.tcon_routes[nid]
                if kind == "const0":
                    values[nid] = 0
                elif kind == "const1":
                    values[nid] = 1
                else:
                    values[nid] = values[node.inputs[var]]
        return {name: values[nid] for name, nid in self.outputs.items()}

    def evaluate(
        self, input_values: Mapping[str, int], param_values: Mapping[int, int]
    ) -> Dict[str, int]:
        """Specialize for ``param_values`` and evaluate one input pattern."""
        return self._evaluate(input_values, param_values=param_values)

    # -- word-level conveniences ----------------------------------------------

    def specialize_words(self, param_words: Mapping[str, int]) -> SpecializedNetwork:
        """Specialize using word-level parameter values keyed by bus name."""
        from ..synth.constprop import param_bit_values

        return self.specialize(param_bit_values(self.source, param_words))

    def evaluate_words(
        self,
        input_words: Mapping[str, Sequence[int]],
        param_words: Mapping[str, int],
    ) -> Dict[str, List[int]]:
        """Evaluate word-level stimulus (bus name -> word list) on the mapped network.

        Buses follow the ``name[i]`` port convention of the HDL builder.  The
        network is specialized once for ``param_words`` and then evaluated per
        pattern; output buses are reassembled into unsigned integers.
        """
        spec = self.specialize_words(param_words)
        num_patterns = max((len(v) for v in input_words.values()), default=0)

        def split(port: str) -> Tuple[str, int]:
            if "[" in port and port.endswith("]"):
                return port[: port.index("[")], int(port[port.index("[") + 1 : -1])
            return port, 0

        # Group the network's input port names by bus.
        input_ports: Dict[str, List[Tuple[int, str]]] = {}
        for node in self.nodes:
            if node.kind == NodeKind.INPUT and node.name:
                bus, idx = split(node.name)
                input_ports.setdefault(bus, []).append((idx, node.name))

        results: Dict[str, List[int]] = {}
        for p in range(num_patterns):
            bit_inputs: Dict[str, int] = {}
            for bus, words in input_words.items():
                word = int(words[p]) if p < len(words) else 0
                for idx, port_name in input_ports.get(bus, []):
                    bit_inputs[port_name] = (word >> idx) & 1
            out_bits = spec.evaluate(bit_inputs)
            for port, value in out_bits.items():
                bus, idx = split(port)
                results.setdefault(bus, [0] * num_patterns)
                if value:
                    results[bus][p] |= 1 << idx
        return results

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        s = self.stats()
        return (
            f"MappedNetwork(luts={s.num_luts}, tluts={s.num_tluts}, "
            f"tcons={s.num_tcons}, depth={s.depth})"
        )
