"""Resilience substrate: deadlines, retries and deterministic fault injection.

The PAR stack is growing toward a long-running service (see ROADMAP), and a
service-shaped flow must survive the failures an on-disk cache, a process
pool and a congestion-negotiating router can produce: corrupt cache values,
crashed pool workers, kernels that run past their time budget.  This module
provides the three primitives everything else builds on:

* :class:`Deadline` -- a wall-clock budget handed down through a call tree;
  long loops (the PathFinder iteration loops in :mod:`repro.par.routing`)
  poll it and raise :class:`DeadlineExceeded` when the budget is spent.
* :class:`RetryPolicy` -- bounded retries with exponential backoff and
  *deterministic, seeded* jitter, so a retried chaos test replays the same
  schedule on every run.
* :class:`FaultPlan` -- a registry of named fault points.  Production code
  marks its failure seams with ``inject("cache.read")`` etc.; with no plan
  installed the call is a single module-global load-and-compare (measured
  ~0.1 us, see PERFORMANCE.md), so the hot path stays untouched.  A plan
  -- installed programmatically or through the ``REPRO_FAULT_PLAN``
  environment variable -- makes chosen sites mis-behave deterministically:
  on exact hit counts, never on wall-clock races.

Recovery code reports what it did through *events*: plain dicts appended to
a caller-provided list (:func:`record_event`), surfaced as
``PaRResult.events`` / ``MinChannelWidthResult.events`` so callers and CI
can assert *how* a result was obtained, not just that it exists.  The fault
point names and the event taxonomy are documented in ``RESILIENCE.md``.
"""

from __future__ import annotations

import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..obs.trace import emit_event

__all__ = [
    "ResilienceError",
    "DeadlineExceeded",
    "FaultInjected",
    "Deadline",
    "RetryPolicy",
    "FaultRule",
    "FaultPlan",
    "install",
    "clear",
    "active_plan",
    "fault_plan",
    "inject",
    "record_event",
    "count_events",
]


class ResilienceError(RuntimeError):
    """Base class of the errors raised by the resilience layer."""


class DeadlineExceeded(ResilienceError):
    """A stage ran past its :class:`Deadline` (or a fault simulated that)."""


class FaultInjected(ResilienceError):
    """Raised by code that maps an injected fault kind to an exception.

    Deliberately *not* a subclass of the domain errors recovery paths
    classify (``OSError``, routing ``RuntimeError`` subtypes are raised
    directly by the fault site instead): an uncaught ``FaultInjected``
    escaping a chaos run means a fault point without a recovery path.
    """

    def __init__(self, site: str, kind: str = "error") -> None:
        super().__init__(f"injected fault at {site!r} (kind={kind!r})")
        self.site = site
        self.kind = kind


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------


class Deadline:
    """Wall-clock budget: ``Deadline(2.5)`` expires 2.5 s after creation.

    ``Deadline(None)`` never expires, so call trees can thread one
    ``deadline`` parameter unconditionally.  ``clock`` is injectable for
    deterministic tests.
    """

    __slots__ = ("seconds", "_clock", "_t0")

    def __init__(
        self,
        seconds: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if seconds is not None and seconds < 0:
            raise ValueError(f"deadline budget must be >= 0, got {seconds}")
        self.seconds = seconds
        self._clock = clock
        self._t0 = clock()

    def remaining(self) -> float:
        """Seconds left; ``inf`` for an unbounded deadline (may be < 0)."""
        if self.seconds is None:
            return float("inf")
        return self.seconds - (self._clock() - self._t0)

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, context: str = "") -> None:
        """Raise :class:`DeadlineExceeded` when the budget is spent."""
        if self.seconds is not None and self.expired():
            where = f" in {context}" if context else ""
            raise DeadlineExceeded(
                f"deadline of {self.seconds:.3f}s exceeded{where}"
            )


# ---------------------------------------------------------------------------
# Retries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and seeded jitter.

    ``attempts`` counts *total* tries (1 = no retry).  The backoff before
    retry ``k`` (1-based) is ``min(max_backoff_s, backoff_s *
    multiplier**(k-1))`` scaled by a jitter factor drawn from a
    ``random.Random(seed)`` stream created fresh for every :meth:`call`,
    so a policy object is reusable and every run replays the same
    schedule -- chaos tests stay deterministic.
    """

    attempts: int = 3
    backoff_s: float = 0.05
    multiplier: float = 2.0
    max_backoff_s: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")

    def backoffs(self) -> Iterator[float]:
        """The deterministic backoff schedule (one delay per retry)."""
        rng = random.Random(self.seed)
        for k in range(self.attempts - 1):
            base = min(self.max_backoff_s, self.backoff_s * self.multiplier**k)
            yield base * (1.0 + self.jitter * rng.random())

    def call(
        self,
        fn: Callable[[], Any],
        retry_on: Tuple[type, ...] = (ResilienceError, OSError),
        deadline: Optional[Deadline] = None,
        events: Optional[List[Dict[str, Any]]] = None,
        site: str = "",
        sleep: Callable[[float], None] = time.sleep,
    ) -> Any:
        """Run ``fn`` under this policy.

        Exceptions in ``retry_on`` are retried (with backoff) until the
        attempt budget -- or the ``deadline`` -- runs out; anything else
        propagates immediately.  Each retry is recorded as a ``"retry"``
        event on ``events``.
        """
        last: Optional[BaseException] = None
        schedule = self.backoffs()
        for attempt in range(1, self.attempts + 1):
            if deadline is not None:
                deadline.check(site or "retry loop")
            try:
                return fn()
            except retry_on as exc:
                last = exc
                if attempt == self.attempts:
                    raise
                delay = next(schedule)
                if deadline is not None:
                    delay = max(0.0, min(delay, deadline.remaining()))
                record_event(
                    events,
                    "retry",
                    site=site or None,
                    attempt=attempt,
                    backoff_s=round(delay, 6),
                    error=type(exc).__name__,
                )
                if delay > 0.0:
                    sleep(delay)
        raise last  # pragma: no cover -- loop either returns or raises


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------


@dataclass
class FaultRule:
    """One site's misbehavior: *which* hits fire and *what* kind of fault.

    ``times`` fires the first N hits of the site (``None`` = every hit);
    ``prob`` instead fires each hit with seeded pseudo-random probability.
    ``scope`` restricts firing to the process that installed the plan
    (``"parent"``) or to forked children such as pool workers
    (``"worker"``); pool recovery paths re-run the work in the parent, so
    a worker-scoped rule exercises the recovery without re-failing it.
    """

    kind: str
    times: Optional[int] = 1
    prob: Optional[float] = None
    seed: int = 0
    scope: str = "any"  # "any" | "worker" | "parent"
    _hits: int = field(default=0, repr=False)
    _rng: Optional[random.Random] = field(default=None, repr=False)

    def should_fire(self, in_worker: bool) -> bool:
        self._hits += 1
        if self.scope == "worker" and not in_worker:
            return False
        if self.scope == "parent" and in_worker:
            return False
        if self.prob is not None:
            if self._rng is None:
                self._rng = random.Random(self.seed)
            return self._rng.random() < self.prob
        return self.times is None or self._hits <= self.times


class FaultPlan:
    """Deterministic, seed-keyed fault registry keyed by site name.

    Build programmatically (``FaultPlan({"cache.read": FaultRule("corrupt")
    })``), from a compact spec string (:meth:`from_spec`) or from the
    ``REPRO_FAULT_PLAN`` environment variable (:meth:`from_env`).  Install
    with :func:`install` / the :func:`fault_plan` context manager; sites
    consult the plan through :func:`inject`.

    Spec grammar (semicolon-separated entries)::

        site=kind[:N][:pP][:sS][:@scope]

    e.g. ``cache.read=corrupt:2`` (first two reads return corrupt data),
    ``cw.probe=crash:1:@worker`` (the first min-CW probe *in a pool
    worker* dies), ``cache.write=io:p0.25:s7`` (every write fails with
    probability 0.25 from seed 7).
    """

    def __init__(self, rules: Optional[Dict[str, FaultRule]] = None) -> None:
        self.rules: Dict[str, FaultRule] = dict(rules or {})
        self.fired: List[Tuple[str, str, int]] = []  #: (site, kind, hit no.)
        self.install_pid: Optional[int] = None

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        rules: Dict[str, FaultRule] = {}
        for entry in spec.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            site, _, rest = entry.partition("=")
            site = site.strip()
            if not site or not rest:
                raise ValueError(f"bad fault spec entry {entry!r}")
            parts = rest.split(":")
            rule = FaultRule(kind=parts[0].strip())
            for mod in parts[1:]:
                mod = mod.strip()
                if not mod:
                    continue
                if mod.startswith("@"):
                    scope = mod[1:]
                    if scope not in ("any", "worker", "parent"):
                        raise ValueError(f"bad fault scope {mod!r} in {entry!r}")
                    rule.scope = scope
                elif mod[0] == "p":
                    rule.prob = float(mod[1:])
                elif mod[0] == "s":
                    rule.seed = int(mod[1:])
                elif mod == "*":
                    rule.times = None
                else:
                    rule.times = int(mod)
            rules[site] = rule
        return cls(rules)

    @classmethod
    def from_env(cls, var: str = "REPRO_FAULT_PLAN") -> Optional["FaultPlan"]:
        spec = os.environ.get(var)
        return cls.from_spec(spec) if spec else None

    def fire(self, site: str) -> Optional[str]:
        """The fault kind to apply at ``site`` for this hit, or ``None``."""
        rule = self.rules.get(site)
        if rule is None:
            return None
        in_worker = (
            self.install_pid is not None and os.getpid() != self.install_pid
        )
        if rule.should_fire(in_worker):
            self.fired.append((site, rule.kind, rule._hits))
            return rule.kind
        return None


#: The process-wide active plan.  ``inject`` is the only hot-path consumer:
#: with no plan installed (and the environment already checked) it is one
#: global load and a ``None`` comparison.
_ACTIVE: Optional[FaultPlan] = None
_ENV_CHECKED = False


def _ensure_env_plan() -> None:
    """Install the ``REPRO_FAULT_PLAN`` plan once, if the variable is set."""
    global _ACTIVE, _ENV_CHECKED
    if _ENV_CHECKED:
        return
    _ENV_CHECKED = True
    plan = FaultPlan.from_env()
    if plan is not None:
        install(plan)


def install(plan: FaultPlan) -> FaultPlan:
    """Make ``plan`` the process-wide active plan and return it."""
    global _ACTIVE, _ENV_CHECKED
    plan.install_pid = os.getpid()
    _ACTIVE = plan
    _ENV_CHECKED = True
    return plan


def clear() -> None:
    """Deactivate fault injection (the ambient env plan stays retired)."""
    global _ACTIVE, _ENV_CHECKED
    _ACTIVE = None
    _ENV_CHECKED = True


def active_plan() -> Optional[FaultPlan]:
    _ensure_env_plan()
    return _ACTIVE


@contextmanager
def fault_plan(plan: Optional[FaultPlan]):
    """Temporarily install ``plan`` (``None`` = suppress all injection)."""
    global _ACTIVE
    _ensure_env_plan()
    previous = _ACTIVE
    if plan is not None:
        install(plan)
    else:
        clear()
    try:
        yield plan
    finally:
        _ACTIVE = previous


def inject(site: str) -> Optional[str]:
    """Fault point: the kind to mis-behave with at ``site``, or ``None``.

    Production call sites interpret the returned kind (documented per site
    in ``RESILIENCE.md``): e.g. the cache maps ``"corrupt"`` to an
    unparseable value and ``"io"`` to an ``OSError``.  Disabled, this is a
    no-op costing one global load -- fault points therefore sit at seam
    granularity (per cache access, per kernel attempt, per pool task),
    never inside inner loops.
    """
    plan = _ACTIVE
    if plan is None:
        if _ENV_CHECKED:
            return None
        _ensure_env_plan()
        plan = _ACTIVE
        if plan is None:
            return None
    return plan.fire(site)


# ---------------------------------------------------------------------------
# Structured recovery events
# ---------------------------------------------------------------------------


def record_event(
    events: Optional[List[Dict[str, Any]]],
    kind: str,
    site: Optional[str] = None,
    **detail: Any,
) -> None:
    """Append a structured recovery event to ``events`` (``None`` = drop).

    Events are plain JSON-able dicts ``{"event": kind, "site": site,
    ...detail}``; the taxonomy lives in ``RESILIENCE.md``.

    Every recorded event is also forwarded to the observability trace
    (:func:`repro.obs.trace.emit_event`, a no-op unless ``REPRO_TRACE`` /
    a tracer is active), so ``PaRResult.events`` and the span timeline
    share one sink and recovery actions show up *inside* the phase that
    triggered them.
    """
    if events is None:
        return
    record: Dict[str, Any] = {"event": kind}
    if site is not None:
        record["site"] = site
    record.update(detail)
    events.append(record)
    emit_event(kind, record)


def count_events(
    events: Optional[List[Dict[str, Any]]], kind: Optional[str] = None
) -> int:
    """Number of recorded events, optionally of one kind."""
    if not events:
        return 0
    if kind is None:
        return len(events)
    return sum(1 for e in events if e.get("event") == kind)
