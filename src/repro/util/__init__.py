"""Cross-cutting utilities shared by every layer of the tool flow.

Currently hosts the resilience substrate (:mod:`repro.util.resilience`):
deadlines, retry policies and the deterministic fault-injection registry
that the PAR/flow layers and the chaos test-suite build on.
"""

from .resilience import (
    Deadline,
    DeadlineExceeded,
    FaultInjected,
    FaultPlan,
    ResilienceError,
    RetryPolicy,
    active_plan,
    clear,
    count_events,
    fault_plan,
    inject,
    install,
    record_event,
)

__all__ = [
    "active_plan",
    "clear",
    "count_events",
    "Deadline",
    "DeadlineExceeded",
    "FaultInjected",
    "FaultPlan",
    "ResilienceError",
    "RetryPolicy",
    "fault_plan",
    "inject",
    "install",
    "record_event",
]
