"""FloPoCo-style floating point: format, word-level arithmetic, circuit generators."""

from .arithmetic import decode_array, encode_array, fp_add, fp_mac, fp_mul, fp_neg
from .circuits import (
    build_fp_adder,
    build_fp_multiplier,
    fp_adder_circuit,
    fp_mac_circuit,
    fp_multiplier_circuit,
)
from .format import EXC_INF, EXC_NAN, EXC_NORMAL, EXC_ZERO, FPFormat, PAPER_FORMAT

__all__ = [
    "decode_array",
    "encode_array",
    "fp_add",
    "fp_mac",
    "fp_mul",
    "fp_neg",
    "build_fp_adder",
    "build_fp_multiplier",
    "fp_adder_circuit",
    "fp_mac_circuit",
    "fp_multiplier_circuit",
    "EXC_INF",
    "EXC_NAN",
    "EXC_NORMAL",
    "EXC_ZERO",
    "FPFormat",
    "PAPER_FORMAT",
]
