"""Word-level (bit-exact) FloPoCo floating-point arithmetic.

These functions are the golden reference for the gate-level operator
circuits in :mod:`repro.flopoco.circuits`: both implement exactly the same
algorithm (truncating rounding, flush-to-zero underflow, saturating
overflow to infinity), so the circuit tests can require bit-for-bit
equality.  They are also the arithmetic used by the VCGRA functional
simulator when it executes MAC Processing Elements.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .format import EXC_INF, EXC_NAN, EXC_NORMAL, EXC_ZERO, FPFormat

__all__ = ["fp_mul", "fp_add", "fp_mac", "fp_neg", "encode_array", "decode_array"]


def fp_neg(fmt: FPFormat, x: int) -> int:
    """Negate a FloPoCo word (flip the sign bit; exceptions keep their sign rules)."""
    exc, sign, exp, frac = fmt.unpack(x)
    if exc == EXC_NAN:
        return x
    return fmt.pack(exc, 1 - sign, exp, frac)


def fp_mul(fmt: FPFormat, x: int, y: int) -> int:
    """Multiply two FloPoCo words (truncating rounding)."""
    exc_x, sign_x, exp_x, frac_x = fmt.unpack(x)
    exc_y, sign_y, exp_y, frac_y = fmt.unpack(y)
    sign = sign_x ^ sign_y

    # Exception handling mirrors the FloPoCo operator semantics.
    if exc_x == EXC_NAN or exc_y == EXC_NAN:
        return fmt.pack(EXC_NAN, 0, 0, 0)
    if exc_x == EXC_INF or exc_y == EXC_INF:
        if exc_x == EXC_ZERO or exc_y == EXC_ZERO:
            return fmt.pack(EXC_NAN, 0, 0, 0)
        return fmt.pack(EXC_INF, sign, 0, 0)
    if exc_x == EXC_ZERO or exc_y == EXC_ZERO:
        return fmt.pack(EXC_ZERO, sign, 0, 0)

    wf = fmt.wf
    sig_x = (1 << wf) | frac_x            # 1.frac on wf+1 bits
    sig_y = (1 << wf) | frac_y
    product = sig_x * sig_y               # 2wf+2 bits, in [2^(2wf), 2^(2wf+2))
    exp_sum = exp_x + exp_y - fmt.bias

    if product >> (2 * wf + 1):           # product >= 2.0: normalize right by one
        frac = (product >> (wf + 1)) & ((1 << wf) - 1)
        exp_sum += 1
    else:
        frac = (product >> wf) & ((1 << wf) - 1)

    if exp_sum > fmt.emax:
        return fmt.pack(EXC_INF, sign, 0, 0)
    if exp_sum < 0:
        return fmt.pack(EXC_ZERO, sign, 0, 0)
    return fmt.pack(EXC_NORMAL, sign, exp_sum, frac)


def fp_add(fmt: FPFormat, x: int, y: int) -> int:
    """Add two FloPoCo words (truncating alignment, flush-to-zero)."""
    exc_x, sign_x, exp_x, frac_x = fmt.unpack(x)
    exc_y, sign_y, exp_y, frac_y = fmt.unpack(y)

    if exc_x == EXC_NAN or exc_y == EXC_NAN:
        return fmt.pack(EXC_NAN, 0, 0, 0)
    if exc_x == EXC_INF and exc_y == EXC_INF:
        if sign_x != sign_y:
            return fmt.pack(EXC_NAN, 0, 0, 0)
        return fmt.pack(EXC_INF, sign_x, 0, 0)
    if exc_x == EXC_INF:
        return fmt.pack(EXC_INF, sign_x, 0, 0)
    if exc_y == EXC_INF:
        return fmt.pack(EXC_INF, sign_y, 0, 0)
    if exc_x == EXC_ZERO and exc_y == EXC_ZERO:
        return fmt.pack(EXC_ZERO, sign_x & sign_y, 0, 0)
    if exc_x == EXC_ZERO:
        return y
    if exc_y == EXC_ZERO:
        return x

    wf = fmt.wf
    sig_x = (1 << wf) | frac_x
    sig_y = (1 << wf) | frac_y

    # Order operands so that (exp_a, sig_a) has the larger magnitude.
    if (exp_x, sig_x) >= (exp_y, sig_y):
        exp_a, sig_a, sign_a = exp_x, sig_x, sign_x
        exp_b, sig_b, sign_b = exp_y, sig_y, sign_y
    else:
        exp_a, sig_a, sign_a = exp_y, sig_y, sign_y
        exp_b, sig_b, sign_b = exp_x, sig_x, sign_x

    shift = exp_a - exp_b
    sig_b_aligned = sig_b >> shift if shift <= wf + 1 else 0

    if sign_a == sign_b:
        total = sig_a + sig_b_aligned     # up to wf+2 bits
        if total >> (wf + 1):             # carry out: normalize right by one
            frac = (total >> 1) & ((1 << wf) - 1)
            exp_res = exp_a + 1
        else:
            frac = total & ((1 << wf) - 1)
            exp_res = exp_a
        if exp_res > fmt.emax:
            return fmt.pack(EXC_INF, sign_a, 0, 0)
        return fmt.pack(EXC_NORMAL, sign_a, exp_res, frac)

    # Effective subtraction.
    diff = sig_a - sig_b_aligned          # >= 0 by operand ordering
    if diff == 0:
        return fmt.pack(EXC_ZERO, 0, 0, 0)
    # Normalize left so the leading one returns to position wf.
    lz = (wf + 1) - diff.bit_length()
    diff <<= lz
    exp_res = exp_a - lz
    if exp_res < 0:
        return fmt.pack(EXC_ZERO, sign_a, 0, 0)
    frac = diff & ((1 << wf) - 1)
    return fmt.pack(EXC_NORMAL, sign_a, exp_res, frac)


def fp_mac(fmt: FPFormat, acc: int, sample: int, coefficient: int) -> int:
    """One multiply-accumulate step: ``acc + sample * coefficient``.

    This is the Processing Element operation of the paper's VCGRA: the image
    sample is multiplied by the (infrequently changing, parameterized) filter
    coefficient and added to the running accumulator.
    """
    return fp_add(fmt, acc, fp_mul(fmt, sample, coefficient))


def encode_array(fmt: FPFormat, values: Iterable[float]) -> np.ndarray:
    """Encode an iterable of Python floats into FloPoCo words (dtype ``object``)."""
    return np.array([fmt.encode(float(v)) for v in values], dtype=object)


def decode_array(fmt: FPFormat, words: Iterable[int]) -> np.ndarray:
    """Decode FloPoCo words back into a float64 array."""
    return np.array([fmt.decode(int(w)) for w in words], dtype=np.float64)
