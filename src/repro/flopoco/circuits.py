"""Gate-level FloPoCo floating-point operator generators.

The paper builds its Processing Element -- a floating-point multiply
accumulate (MAC) operator -- with the FloPoCo library, *without* dedicated
multipliers or adders, i.e. as pure LUT logic.  These generators reproduce
that: they elaborate FP multiplier, adder and MAC datapaths directly into
gates using the structural HDL builder, with the filter coefficient
optionally declared as a ``--PARAM`` input so that the downstream TCONMAP
flow can specialize the operator for each coefficient value.

All operators implement exactly the semantics of
:mod:`repro.flopoco.arithmetic` (truncating rounding, flush-to-zero,
saturate-to-infinity), so the gate-level and word-level models agree
bit-for-bit; the test suite relies on this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..netlist.hdl import Bus, Design
from .format import FPFormat

__all__ = [
    "FPPorts",
    "build_fp_multiplier",
    "build_fp_adder",
    "fp_multiplier_circuit",
    "fp_adder_circuit",
    "fp_mac_circuit",
]


@dataclass
class FPPorts:
    """Unpacked field buses of a FloPoCo word inside a design."""

    exc: Bus    # 2 bits
    sign: int   # 1 bit
    exp: Bus    # we bits
    frac: Bus   # wf bits


def _unpack(d: Design, word: Bus, fmt: FPFormat) -> FPPorts:
    """Split an encoded FloPoCo bus into its fields."""
    if len(word) != fmt.width:
        raise ValueError(f"expected a {fmt.width}-bit bus, got {len(word)} bits")
    frac = word[: fmt.wf]
    exp = word[fmt.wf : fmt.wf + fmt.we]
    sign = word[fmt.wf + fmt.we]
    exc = word[fmt.wf + fmt.we + 1 : fmt.wf + fmt.we + 3]
    return FPPorts(exc=exc, sign=sign, exp=exp, frac=frac)


def _pack(d: Design, ports: FPPorts) -> Bus:
    """Reassemble field buses into an encoded FloPoCo bus."""
    return list(ports.frac) + list(ports.exp) + [ports.sign] + list(ports.exc)


def _exc_flags(d: Design, exc: Bus) -> Tuple[int, int, int, int]:
    """Decode the two exception bits into (is_zero, is_normal, is_inf, is_nan)."""
    b0, b1 = exc[0], exc[1]
    nb0, nb1 = d.circuit.g_not(b0), d.circuit.g_not(b1)
    is_zero = d.circuit.g_and(nb1, nb0)
    is_normal = d.circuit.g_and(nb1, b0)
    is_inf = d.circuit.g_and(b1, nb0)
    is_nan = d.circuit.g_and(b1, b0)
    return is_zero, is_normal, is_inf, is_nan


def _priority_select(
    d: Design, cases: Sequence[Tuple[int, Bus]], default: Bus
) -> Bus:
    """Priority multiplexer over equally wide buses: the first true condition wins."""
    result = list(default)
    for cond, value in reversed(list(cases)):
        result = d.mux_bus(cond, result, value)
    return result


# ---------------------------------------------------------------------------
# Multiplier
# ---------------------------------------------------------------------------

def build_fp_multiplier(d: Design, x: Bus, y: Bus, fmt: FPFormat) -> Bus:
    """Elaborate a FloPoCo floating-point multiplier; returns the result bus."""
    px, py = _unpack(d, x, fmt), _unpack(d, y, fmt)
    wf, we = fmt.wf, fmt.we

    xz, xn, xi, xq = _exc_flags(d, px.exc)
    yz, yn, yi, yq = _exc_flags(d, py.exc)
    sign = d.circuit.g_xor(px.sign, py.sign)

    is_nan = d.circuit.g_or(xq, yq, d.circuit.g_and(xi, yz), d.circuit.g_and(xz, yi))
    is_inf = d.circuit.g_and(d.circuit.g_or(xi, yi), d.circuit.g_not(is_nan))
    is_zero_exc = d.circuit.g_and(
        d.circuit.g_or(xz, yz),
        d.circuit.g_not(is_nan),
        d.circuit.g_not(is_inf),
    )
    normal_case = d.circuit.g_and(xn, yn)

    # Significand product (1.frac_x * 1.frac_y), 2wf+2 bits.
    sig_x = list(px.frac) + [d.const_bit(1)]
    sig_y = list(py.frac) + [d.const_bit(1)]
    product = d.multiplier(sig_x, sig_y)
    msb = product[2 * wf + 1]
    frac_hi = product[wf + 1 : 2 * wf + 1]
    frac_lo = product[wf : 2 * wf]
    frac = d.mux_bus(msb, frac_lo, frac_hi)

    # Exponent: exp_x + exp_y + msb - bias, evaluated on we+2 bits.
    e1, c1 = d.adder(px.exp, py.exp)
    e1 = e1 + [c1]
    e2, c2 = d.adder(e1, [msb])
    exp_wide = e2 + [c2]                                  # we + 2 bits
    exp_adj, borrow = d.subtractor(exp_wide, d.const_bus(fmt.bias, we + 2))
    underflow = borrow
    overflow = d.circuit.g_and(
        d.circuit.g_not(underflow), d.circuit.g_or(exp_adj[we], exp_adj[we + 1])
    )
    exp_res = exp_adj[:we]

    is_result_normal = d.circuit.g_and(
        normal_case, d.circuit.g_not(overflow), d.circuit.g_not(underflow)
    )

    # Exception field of the result.
    exc_bit1 = d.circuit.g_or(is_nan, is_inf, d.circuit.g_and(normal_case, overflow))
    exc_bit0 = d.circuit.g_or(is_nan, is_result_normal)

    frac_out = [d.circuit.g_and(b, is_result_normal) for b in frac]
    exp_out = [d.circuit.g_and(b, is_result_normal) for b in exp_res]
    sign_out = d.circuit.g_and(sign, d.circuit.g_not(is_nan))

    return _pack(d, FPPorts(exc=[exc_bit0, exc_bit1], sign=sign_out, exp=exp_out, frac=frac_out))


# ---------------------------------------------------------------------------
# Adder
# ---------------------------------------------------------------------------

def build_fp_adder(d: Design, x: Bus, y: Bus, fmt: FPFormat) -> Bus:
    """Elaborate a FloPoCo floating-point adder; returns the result bus."""
    px, py = _unpack(d, x, fmt), _unpack(d, y, fmt)
    wf, we = fmt.wf, fmt.we
    one = d.const_bit(1)
    zero = d.const_bit(0)

    xz, xn, xi, xq = _exc_flags(d, px.exc)
    yz, yn, yi, yq = _exc_flags(d, py.exc)

    # ---- exception cases -------------------------------------------------
    opposite_inf = d.circuit.g_and(xi, yi, d.circuit.g_xor(px.sign, py.sign))
    is_nan = d.circuit.g_or(xq, yq, opposite_inf)
    is_inf = d.circuit.g_and(d.circuit.g_or(xi, yi), d.circuit.g_not(is_nan))
    inf_sign = d.mux_bit(xi, py.sign, px.sign)
    both_zero = d.circuit.g_and(xz, yz)
    x_zero_only = d.circuit.g_and(xz, d.circuit.g_not(yz))
    y_zero_only = d.circuit.g_and(yz, d.circuit.g_not(xz))

    # ---- operand ordering (a has the larger magnitude) --------------------
    key_x = list(px.frac) + list(px.exp)
    key_y = list(py.frac) + list(py.exp)
    x_lt_y = d.less_than(key_x, key_y)

    exp_a = d.mux_bus(x_lt_y, px.exp, py.exp)
    exp_b = d.mux_bus(x_lt_y, py.exp, px.exp)
    frac_a = d.mux_bus(x_lt_y, px.frac, py.frac)
    frac_b = d.mux_bus(x_lt_y, py.frac, px.frac)
    sign_a = d.mux_bit(x_lt_y, px.sign, py.sign)
    sign_b = d.mux_bit(x_lt_y, py.sign, px.sign)

    sig_a = list(frac_a) + [one]
    sig_b = list(frac_b) + [one]

    # ---- alignment ---------------------------------------------------------
    shift, _ = d.subtractor(exp_a, exp_b)     # exp_a >= exp_b by construction
    aligned = d.barrel_shift_right(sig_b, shift)

    same_sign = d.circuit.g_not(d.circuit.g_xor(sign_a, sign_b))

    # ---- addition path -----------------------------------------------------
    total, carry = d.adder(sig_a, aligned)
    frac_add = d.mux_bus(carry, total[:wf], total[1 : wf + 1])
    exp_add, add_cout = d.adder(exp_a, [carry])
    overflow_add = add_cout

    # ---- subtraction path ---------------------------------------------------
    diff, _ = d.subtractor(sig_a, aligned)
    diff = diff[: wf + 1]
    diff_is_zero = d.circuit.g_not(d.reduce_or(diff))
    lz = d.leading_zero_count(diff)
    normalized = d.barrel_shift_left(diff, lz)
    frac_sub = normalized[:wf]
    exp_sub, sub_borrow = d.subtractor(exp_a, d.zero_extend(lz, max(we, len(lz))))
    exp_sub = exp_sub[:we]
    underflow_sub = sub_borrow

    # ---- normal-path result -------------------------------------------------
    # addition: NORMAL unless exponent overflow (then INF)
    add_exc0 = d.circuit.g_not(overflow_add)
    add_exc1 = overflow_add
    add_fields = (
        [d.circuit.g_and(b, d.circuit.g_not(overflow_add)) for b in frac_add]
        + [d.circuit.g_and(b, d.circuit.g_not(overflow_add)) for b in exp_add[:we]]
        + [sign_a]
        + [add_exc0, add_exc1]
    )

    # subtraction: ZERO when the difference cancels or the exponent underflows
    sub_is_zero = d.circuit.g_or(diff_is_zero, underflow_sub)
    sub_sign = d.circuit.g_and(sign_a, d.circuit.g_not(diff_is_zero))
    sub_exc0 = d.circuit.g_not(sub_is_zero)
    sub_fields = (
        [d.circuit.g_and(b, sub_exc0) for b in frac_sub]
        + [d.circuit.g_and(b, sub_exc0) for b in exp_sub]
        + [sub_sign]
        + [sub_exc0, zero]
    )

    normal_fields = d.mux_bus(same_sign, sub_fields, add_fields)

    # ---- exception-path field words -----------------------------------------
    nan_fields = d.const_bus(0, wf + we) + [zero] + [one, one]
    inf_fields = d.const_bus(0, wf + we) + [inf_sign] + [zero, one]
    zero_both_fields = (
        d.const_bus(0, wf + we) + [d.circuit.g_and(px.sign, py.sign)] + [zero, zero]
    )
    y_verbatim = list(py.frac) + list(py.exp) + [py.sign] + list(py.exc)
    x_verbatim = list(px.frac) + list(px.exp) + [px.sign] + list(px.exc)

    result = _priority_select(
        d,
        [
            (is_nan, nan_fields),
            (is_inf, inf_fields),
            (both_zero, zero_both_fields),
            (x_zero_only, y_verbatim),
            (y_zero_only, x_verbatim),
        ],
        normal_fields,
    )
    return result


# ---------------------------------------------------------------------------
# Top-level circuit factories
# ---------------------------------------------------------------------------

def fp_multiplier_circuit(
    fmt: FPFormat, param_coefficient: bool = False, name: str = "fp_mul"
) -> Design:
    """Standalone FP multiplier design.

    With ``param_coefficient=True`` the second operand becomes a ``--PARAM``
    bus named ``coeff`` (the paper's parameterized filter coefficient).
    """
    d = Design(name)
    x = d.input_bus("x", fmt.width)
    if param_coefficient:
        y = d.param_bus("coeff", fmt.width)
    else:
        y = d.input_bus("y", fmt.width)
    d.output_bus("p", build_fp_multiplier(d, x, y, fmt))
    return d


def fp_adder_circuit(fmt: FPFormat, name: str = "fp_add") -> Design:
    """Standalone FP adder design with inputs ``x`` and ``y``."""
    d = Design(name)
    x = d.input_bus("x", fmt.width)
    y = d.input_bus("y", fmt.width)
    d.output_bus("s", build_fp_adder(d, x, y, fmt))
    return d


def fp_mac_circuit(
    fmt: FPFormat,
    param_coefficient: bool = True,
    name: str = "fp_mac",
) -> Design:
    """Multiply-accumulate Processing Element datapath.

    ``result = acc + sample * coeff``.  The coefficient is a parameter bus by
    default -- exactly the configuration of the paper's PE, where the filter
    coefficient changes only when the VCGRA is reconfigured for a new filter.
    """
    d = Design(name)
    sample = d.input_bus("sample", fmt.width)
    acc = d.input_bus("acc", fmt.width)
    if param_coefficient:
        coeff = d.param_bus("coeff", fmt.width)
    else:
        coeff = d.input_bus("coeff", fmt.width)
    product = build_fp_multiplier(d, sample, coeff, fmt)
    result = build_fp_adder(d, acc, product, fmt)
    d.output_bus("result", result)
    return d
