"""FloPoCo floating-point number format.

The paper builds its MAC Processing Element with the FloPoCo operator
generator and uses the FloPoCo floating-point format with a 6-bit exponent
and a 26-bit mantissa (fraction).  The FloPoCo format differs from IEEE-754:

* two explicit *exception bits* encode zero / normal / infinity / NaN, so no
  exponent codes are reserved;
* there are no subnormals (results below the smallest normal flush to zero);
* the significand of a normal number is ``1.fraction`` with an implicit
  leading one.

Bit layout (LSB first): ``fraction[wf-1:0] | exponent[we-1:0] | sign |
exception[1:0]``; total width ``wf + we + 3``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

__all__ = ["FPFormat", "EXC_ZERO", "EXC_NORMAL", "EXC_INF", "EXC_NAN", "PAPER_FORMAT"]

#: Exception-field encodings (two bits).
EXC_ZERO = 0
EXC_NORMAL = 1
EXC_INF = 2
EXC_NAN = 3


@dataclass(frozen=True)
class FPFormat:
    """A FloPoCo floating-point format parameterized by exponent/fraction width."""

    we: int  #: exponent width in bits
    wf: int  #: fraction (mantissa) width in bits

    def __post_init__(self) -> None:
        if self.we < 2 or self.wf < 1:
            raise ValueError("FPFormat needs we >= 2 and wf >= 1")

    # -- derived quantities ---------------------------------------------------

    @property
    def width(self) -> int:
        """Total encoded width: fraction + exponent + sign + 2 exception bits."""
        return self.wf + self.we + 3

    @property
    def bias(self) -> int:
        return (1 << (self.we - 1)) - 1

    @property
    def emax(self) -> int:
        """Largest representable (biased) exponent field value."""
        return (1 << self.we) - 1

    # -- field accessors --------------------------------------------------------

    def fraction_of(self, word: int) -> int:
        return word & ((1 << self.wf) - 1)

    def exponent_of(self, word: int) -> int:
        return (word >> self.wf) & ((1 << self.we) - 1)

    def sign_of(self, word: int) -> int:
        return (word >> (self.wf + self.we)) & 1

    def exception_of(self, word: int) -> int:
        return (word >> (self.wf + self.we + 1)) & 3

    def pack(self, exc: int, sign: int, exponent: int, fraction: int) -> int:
        """Assemble a word from its fields."""
        if not 0 <= exc <= 3:
            raise ValueError("exception field must be 0..3")
        if not 0 <= exponent <= self.emax:
            raise ValueError("exponent field out of range")
        if not 0 <= fraction < (1 << self.wf):
            raise ValueError("fraction field out of range")
        return (
            (exc << (self.wf + self.we + 1))
            | ((sign & 1) << (self.wf + self.we))
            | (exponent << self.wf)
            | fraction
        )

    def unpack(self, word: int) -> Tuple[int, int, int, int]:
        """Split a word into ``(exception, sign, exponent, fraction)``."""
        return (
            self.exception_of(word),
            self.sign_of(word),
            self.exponent_of(word),
            self.fraction_of(word),
        )

    # -- conversion to/from Python floats ------------------------------------------

    def encode(self, value: float) -> int:
        """Encode a Python float into the FloPoCo format (round to nearest)."""
        if math.isnan(value):
            return self.pack(EXC_NAN, 0, 0, 0)
        if math.isinf(value):
            return self.pack(EXC_INF, 0 if value > 0 else 1, 0, 0)
        if value == 0.0:
            sign = 1 if math.copysign(1.0, value) < 0 else 0
            return self.pack(EXC_ZERO, sign, 0, 0)
        sign = 0 if value > 0 else 1
        mag = abs(value)
        exp = math.floor(math.log2(mag))
        # Guard against log2 rounding at powers of two.
        if mag / (2.0 ** exp) >= 2.0:
            exp += 1
        elif mag / (2.0 ** exp) < 1.0:
            exp -= 1
        frac_real = mag / (2.0 ** exp) - 1.0
        frac = int(round(frac_real * (1 << self.wf)))
        if frac >= (1 << self.wf):  # rounding overflowed into the next binade
            frac = 0
            exp += 1
        biased = exp + self.bias
        if biased > self.emax:
            return self.pack(EXC_INF, sign, 0, 0)
        if biased < 0:
            return self.pack(EXC_ZERO, sign, 0, 0)
        return self.pack(EXC_NORMAL, sign, biased, frac)

    def decode(self, word: int) -> float:
        """Decode a FloPoCo word into a Python float."""
        exc, sign, exponent, fraction = self.unpack(word)
        if exc == EXC_ZERO:
            return -0.0 if sign else 0.0
        if exc == EXC_INF:
            return float("-inf") if sign else float("inf")
        if exc == EXC_NAN:
            return float("nan")
        mag = (1.0 + fraction / (1 << self.wf)) * (2.0 ** (exponent - self.bias))
        return -mag if sign else mag

    # -- resolution helpers -------------------------------------------------------

    def ulp(self, value: float) -> float:
        """Unit in the last place around ``value`` (for accuracy assertions)."""
        if value == 0.0 or math.isnan(value) or math.isinf(value):
            return 2.0 ** (-self.bias - self.wf)
        exp = math.floor(math.log2(abs(value)))
        return 2.0 ** (exp - self.wf)

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return f"FPFormat(we={self.we}, wf={self.wf}, width={self.width})"


#: The format used throughout the paper's evaluation (6-bit exponent, 26-bit mantissa).
PAPER_FORMAT = FPFormat(we=6, wf=26)
